"""Reproduction of Figure 2: convergence time of ``Log-Size-Estimation`` vs ``n``.

Figure 2 of the paper (Appendix C) plots, for population sizes
``10^2 .. 10^5`` (10 runs each), the parallel time at which all agents reach
``epoch = 5 * logSize2``; the paper notes the estimate is within additive
error 2 of ``log2 n`` in every run.  The population axis is logarithmic, so
the ``O(log^2 n)`` bound appears as a gently super-linear curve.

:func:`reproduce_figure2` runs the same sweep on the vectorised engine (the
sequential engine is too slow beyond ~10^3 agents in pure Python; see
``DESIGN.md``), returning per-size statistics plus the raw points, a CSV
export and an ASCII rendering of the scatter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.parameters import ProtocolParameters
from repro.harness.experiment import ExperimentSpec, run_array_experiment
from repro.harness.reporting import format_table, render_ascii_series
from repro.harness.results import SeriesSummary, SweepResult


@dataclass(frozen=True)
class Figure2Point:
    """One run of the Figure 2 sweep."""

    population_size: int
    seed: int
    convergence_time: float
    max_additive_error: float


@dataclass
class Figure2Result:
    """The reproduced Figure 2 data set."""

    points: list[Figure2Point]
    summaries: dict[int, SeriesSummary]
    params: ProtocolParameters
    non_converged_runs: int

    def sizes(self) -> list[int]:
        """Population sizes present, ascending."""
        return sorted(self.summaries)

    def mean_times(self) -> list[float]:
        """Mean convergence time per size (same order as :meth:`sizes`)."""
        return [self.summaries[size].mean for size in self.sizes()]

    def max_error_observed(self) -> float:
        """Largest additive error over every run (paper: always below 2)."""
        if not self.points:
            return math.nan
        return max(point.max_additive_error for point in self.points)

    def table(self) -> str:
        """Aligned text table: size, runs, mean/min/max time, max error."""
        rows = []
        for size in self.sizes():
            summary = self.summaries[size]
            errors = [
                point.max_additive_error
                for point in self.points
                if point.population_size == size
            ]
            rows.append(
                [
                    size,
                    summary.count,
                    summary.mean,
                    summary.minimum,
                    summary.maximum,
                    max(errors) if errors else math.nan,
                ]
            )
        return format_table(
            ["n", "runs", "mean time", "min time", "max time", "max |err|"], rows
        )

    def ascii_plot(self) -> str:
        """Coarse ASCII scatter matching the paper's log-x convergence plot."""
        xs = [float(point.population_size) for point in self.points]
        ys = [point.convergence_time for point in self.points]
        return render_ascii_series(
            xs,
            ys,
            x_label="population size n",
            y_label="convergence time (parallel)",
            log_x=True,
        )

    def to_csv(self) -> str:
        """CSV of the raw points (``n,seed,convergence_time,max_additive_error``)."""
        lines = ["population_size,seed,convergence_time,max_additive_error"]
        for point in self.points:
            lines.append(
                f"{point.population_size},{point.seed},"
                f"{point.convergence_time},{point.max_additive_error}"
            )
        return "\n".join(lines)

    def growth_exponent(self) -> float | None:
        """Least-squares slope of ``time`` against ``log2(n)^2``.

        The paper's bound is ``O(log^2 n)``; a roughly constant positive slope
        (rather than one growing with ``n``) indicates the measured times
        scale like ``log^2 n``.  Returns ``None`` with fewer than two sizes.
        """
        sizes = self.sizes()
        if len(sizes) < 2:
            return None
        xs = [math.log2(size) ** 2 for size in sizes]
        ys = [self.summaries[size].mean for size in sizes]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return None
        return numerator / denominator


def reproduce_figure2(
    population_sizes: Sequence[int],
    runs_per_size: int = 3,
    params: ProtocolParameters | None = None,
    base_seed: int = 2019,
    time_budget_factor: float = 4.0,
) -> Figure2Result:
    """Run the Figure 2 sweep on the vectorised engine.

    Parameters
    ----------
    population_sizes:
        Sizes to sweep (the paper uses ``10^2 .. 10^5``; benchmarks default to
        a smaller grid — see ``benchmarks/bench_figure2_convergence.py``).
    runs_per_size:
        Independent runs per size (paper: 10).
    params:
        Protocol constants (paper values by default).
    base_seed:
        Base seed for reproducibility.
    time_budget_factor:
        Safety factor over the a-priori convergence-time estimate.
    """
    spec = ExperimentSpec(
        population_sizes=list(population_sizes),
        runs_per_size=runs_per_size,
        params=params or ProtocolParameters.paper(),
        base_seed=base_seed,
        time_budget_factor=time_budget_factor,
    )
    sweep = run_array_experiment(spec, name="figure2")
    return figure2_from_sweep(sweep, spec.params)


def figure2_from_sweep(sweep: SweepResult, params: ProtocolParameters) -> Figure2Result:
    """Convert a sweep (from either engine) into a :class:`Figure2Result`."""
    points = []
    non_converged = 0
    for record in sweep.records:
        if record.converged and record.convergence_time is not None:
            points.append(
                Figure2Point(
                    population_size=record.population_size,
                    seed=record.seed,
                    convergence_time=record.convergence_time,
                    max_additive_error=record.max_additive_error,
                )
            )
        else:
            non_converged += 1
    return Figure2Result(
        points=points,
        summaries=sweep.summary_by_size(),
        params=params,
        non_converged_runs=non_converged,
    )
