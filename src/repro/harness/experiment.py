"""Repeatable experiment runners.

For the size-estimation protocol, two runners are provided, one per engine:

* :func:`run_sequential_experiment` — the agent-level engine (exact paper
  scheduler), used for small populations and for cross-validating the
  vectorised engine;
* :func:`run_array_experiment` — the vectorised engine
  (:class:`~repro.core.array_simulator.ArrayLogSizeSimulator`), used for the
  Figure 2 sweep at larger populations.

For classic finite-state workloads (epidemic, majority, leader election,
counter termination), :func:`run_finite_state_experiment` sweeps any
:class:`~repro.protocols.base.FiniteStateProtocol` over population sizes on a
selectable engine (``"agent"``, ``"count"`` or ``"batched"`` — see
:func:`repro.engine.selection.build_engine`).

All three runners expand their sweep into picklable
:class:`~repro.harness.parallel.TrialSpec` lists and execute them through
:func:`~repro.harness.parallel.run_trials`, so every sweep can fan out over a
worker pool (``workers > 1``) and resume from an on-disk result cache
(``cache=ResultCache(...)``) or any shared result store (``store=`` — a
:mod:`repro.store` URL such as ``sqlite:PATH`` or ``http://HOST:PORT``, so
several drivers on several hosts can cooperate on one sweep) — results are
identical record-for-record to the serial ``workers=1`` path.  All runners
return
:class:`~repro.harness.results.RunRecord` lists so downstream figure/table
builders do not care which engine produced the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.array_simulator import expected_convergence_time
from repro.core.parameters import ProtocolParameters
from repro.exceptions import SimulationError
from repro.harness.cache import ResultCache
from repro.harness.parallel import (
    KIND_ARRAY,
    KIND_SEQUENTIAL,
    TrialSpec,
    build_finite_state_trials,
    run_trials,
)
from repro.harness.results import SweepResult
from repro.protocols.base import FiniteStateProtocol
from repro.rng import spawn_seed


@dataclass(frozen=True)
class ExperimentSpec:
    """Specification of a size-estimation sweep.

    Attributes
    ----------
    population_sizes:
        The sizes to sweep over (each must be at least 2).
    runs_per_size:
        Independent runs (seeds) per size; the paper's Figure 2 uses 10.
    params:
        Protocol constants (paper values by default).
    time_budget_factor:
        Multiple of the a-priori convergence-time estimate allotted to each
        run before it is declared non-converged.
    base_seed:
        Sweep-level seed; run ``j`` at size index ``i`` uses
        ``spawn_seed(base_seed, i, j)`` (collision-free for any number of
        runs, unlike the old ``base_seed + 1000 i + j`` scheme).
    """

    population_sizes: Sequence[int]
    runs_per_size: int = 3
    params: ProtocolParameters = field(default_factory=ProtocolParameters.paper)
    time_budget_factor: float = 4.0
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.population_sizes:
            raise SimulationError("population_sizes must be non-empty")
        too_small = [size for size in self.population_sizes if size < 2]
        if too_small:
            raise SimulationError(
                f"every population size must be >= 2, got {too_small}"
            )
        if self.runs_per_size < 1:
            raise SimulationError(
                f"runs_per_size must be >= 1, got {self.runs_per_size}"
            )
        if self.time_budget_factor <= 0:
            raise SimulationError(
                f"time_budget_factor must be positive, got {self.time_budget_factor}"
            )

    def seed_for(self, size_index: int, run_index: int) -> int:
        """Deterministic, collision-free per-run seed."""
        return spawn_seed(self.base_seed, size_index, run_index)

    def budget_for(self, population_size: int) -> float:
        """Parallel-time budget for one run at ``population_size``."""
        return self.time_budget_factor * expected_convergence_time(
            population_size, self.params
        )

    def trials(self, kind: str, engine: str, track_states: bool = False) -> list[TrialSpec]:
        """Expand the sweep into one :class:`TrialSpec` per run."""
        return [
            TrialSpec(
                kind=kind,
                population_size=population_size,
                size_index=size_index,
                run_index=run_index,
                base_seed=self.base_seed,
                engine=engine,
                max_parallel_time=self.budget_for(population_size),
                params=self.params,
                track_states=track_states,
            )
            for size_index, population_size in enumerate(self.population_sizes)
            for run_index in range(self.runs_per_size)
        ]


def run_array_experiment(
    spec: ExperimentSpec,
    name: str = "figure2-array",
    workers: int = 1,
    cache: ResultCache | None = None,
    store=None,
) -> SweepResult:
    """Run the sweep on the vectorised engine and collect run records."""
    outcome = run_trials(
        spec.trials(KIND_ARRAY, "array"), workers=workers, cache=cache, store=store
    )
    return SweepResult(name=name, records=outcome.records)


def run_finite_state_experiment(
    protocol_factory: Callable[[], FiniteStateProtocol] | str,
    predicate: Callable | None = None,
    population_sizes: Sequence[int] = (),
    runs_per_size: int = 3,
    max_parallel_time: float | Callable[[int], float] = 100.0,
    engine: str = "count",
    base_seed: int = 0,
    name: str | None = None,
    check_interval: int | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    store=None,
    scheduler: str | None = None,
    scheduler_options: dict | None = None,
    **engine_options,
) -> SweepResult:
    """Sweep a finite-state protocol over population sizes on one engine.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable building a fresh protocol per run, or the
        name of a registered workload (see
        :data:`repro.harness.parallel.WORKLOADS`), in which case
        ``predicate`` may be omitted.
    predicate:
        Convergence predicate evaluated against the engine (all engines share
        the count-level interface, so ``lambda sim: sim.count("S") == 0``
        works on every engine).
    max_parallel_time:
        Per-run parallel-time budget; may be a callable ``n -> budget``.
    engine:
        One of :data:`repro.engine.selection.ENGINE_NAMES`.
    workers:
        Worker processes; ``> 1`` requires picklable factory/predicate
        (module-level functions or classes), which every registered workload
        satisfies.
    cache:
        Optional :class:`ResultCache` for resumable, incremental sweeps.
    store:
        Alternative to ``cache``: a :class:`~repro.store.base.ResultStore`
        instance or store URL (``jsonl:DIR`` / ``sqlite:PATH`` /
        ``http://HOST:PORT``) shared safely by many concurrent drivers.
    scheduler / scheduler_options:
        Scheduling policy for every trial (a registered scheduler name plus
        options); ``None`` keeps the engine's default.  Participates in the
        trial cache keys.
    engine_options:
        Forwarded to :func:`repro.engine.selection.build_engine` (e.g.
        ``batch_size`` for the batched engine).

    Returns
    -------
    SweepResult
        One :class:`RunRecord` per run; ``extra`` carries the engine name,
        interactions executed and the final output histogram.
    """
    protocol_name = protocol_factory if isinstance(protocol_factory, str) else None
    specs = build_finite_state_trials(
        population_sizes=population_sizes,
        runs_per_size=runs_per_size,
        base_seed=base_seed,
        engine=engine,
        max_parallel_time=max_parallel_time,
        check_interval=check_interval,
        protocol=protocol_name,
        protocol_factory=None if protocol_name else protocol_factory,
        predicate=predicate,
        scheduler=scheduler,
        scheduler_options=scheduler_options,
        **engine_options,
    )
    outcome = run_trials(specs, workers=workers, cache=cache, store=store)
    return SweepResult(
        name=name or f"finite-state-{engine}", records=outcome.records
    )


def run_sequential_experiment(
    spec: ExperimentSpec,
    name: str = "figure2-sequential",
    track_states: bool = False,
    workers: int = 1,
    cache: ResultCache | None = None,
    store=None,
) -> SweepResult:
    """Run the sweep on the agent-level engine and collect run records."""
    outcome = run_trials(
        spec.trials(KIND_SEQUENTIAL, "sequential", track_states=track_states),
        workers=workers,
        cache=cache,
        store=store,
    )
    return SweepResult(name=name, records=outcome.records)
