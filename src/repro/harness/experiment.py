"""Repeatable experiment runners.

For the size-estimation protocol, two runners are provided, one per engine:

* :func:`run_sequential_experiment` — the agent-level engine (exact paper
  scheduler), used for small populations and for cross-validating the
  vectorised engine;
* :func:`run_array_experiment` — the vectorised engine
  (:class:`~repro.core.array_simulator.ArrayLogSizeSimulator`), used for the
  Figure 2 sweep at larger populations.

For classic finite-state workloads (epidemic, majority, leader election,
counter termination), :func:`run_finite_state_experiment` sweeps any
:class:`~repro.protocols.base.FiniteStateProtocol` over population sizes on a
selectable engine (``"agent"``, ``"count"`` or ``"batched"`` — see
:func:`repro.engine.selection.build_engine`).

All runners return :class:`~repro.harness.results.RunRecord` lists so
downstream figure/table builders do not care which engine produced the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time
from repro.core.log_size_estimation import (
    LogSizeEstimationProtocol,
    all_agents_done,
    estimate_error,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.selection import build_engine
from repro.engine.simulator import Simulation
from repro.exceptions import ConvergenceError
from repro.harness.results import RunRecord, SweepResult
from repro.protocols.base import FiniteStateProtocol


@dataclass(frozen=True)
class ExperimentSpec:
    """Specification of a size-estimation sweep.

    Attributes
    ----------
    population_sizes:
        The sizes to sweep over.
    runs_per_size:
        Independent runs (seeds) per size; the paper's Figure 2 uses 10.
    params:
        Protocol constants (paper values by default).
    time_budget_factor:
        Multiple of the a-priori convergence-time estimate allotted to each
        run before it is declared non-converged.
    base_seed:
        Seed of the first run; run ``j`` at size index ``i`` uses
        ``base_seed + 1000 i + j``.
    """

    population_sizes: Sequence[int]
    runs_per_size: int = 3
    params: ProtocolParameters = field(default_factory=ProtocolParameters.paper)
    time_budget_factor: float = 4.0
    base_seed: int = 0

    def seed_for(self, size_index: int, run_index: int) -> int:
        """Deterministic per-run seed."""
        return self.base_seed + 1000 * size_index + run_index

    def budget_for(self, population_size: int) -> float:
        """Parallel-time budget for one run at ``population_size``."""
        return self.time_budget_factor * expected_convergence_time(
            population_size, self.params
        )


def run_array_experiment(spec: ExperimentSpec, name: str = "figure2-array") -> SweepResult:
    """Run the sweep on the vectorised engine and collect run records."""
    result = SweepResult(name=name)
    for size_index, population_size in enumerate(spec.population_sizes):
        for run_index in range(spec.runs_per_size):
            seed = spec.seed_for(size_index, run_index)
            simulator = ArrayLogSizeSimulator(
                population_size=population_size, params=spec.params, seed=seed
            )
            outcome = simulator.run_until_done(
                max_parallel_time=spec.budget_for(population_size)
            )
            result.add(
                RunRecord(
                    population_size=population_size,
                    seed=seed,
                    converged=outcome.converged,
                    convergence_time=outcome.convergence_time,
                    max_additive_error=outcome.max_additive_error,
                    extra={
                        "engine": "array",
                        "log_size2": outcome.log_size2,
                        "interactions": outcome.interactions,
                        "distinct_state_bound": outcome.distinct_state_bound,
                        "final_estimate_mean": outcome.final_estimate_mean,
                    },
                )
            )
    return result


def run_finite_state_experiment(
    protocol_factory: Callable[[], FiniteStateProtocol],
    predicate: Callable,
    population_sizes: Sequence[int],
    runs_per_size: int = 3,
    max_parallel_time: float = 100.0,
    engine: str = "count",
    base_seed: int = 0,
    name: str | None = None,
    check_interval: int | None = None,
    **engine_options,
) -> SweepResult:
    """Sweep a finite-state protocol over population sizes on one engine.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable building a fresh protocol per run.
    predicate:
        Convergence predicate evaluated against the engine (all engines share
        the count-level interface, so ``lambda sim: sim.count("S") == 0``
        works on every engine).
    engine:
        One of :data:`repro.engine.selection.ENGINE_NAMES`.
    engine_options:
        Forwarded to :func:`repro.engine.selection.build_engine` (e.g.
        ``batch_size`` for the batched engine).

    Returns
    -------
    SweepResult
        One :class:`RunRecord` per run; ``extra`` carries the engine name,
        interactions executed and the final output histogram.
    """
    result = SweepResult(name=name or f"finite-state-{engine}")
    for size_index, population_size in enumerate(population_sizes):
        for run_index in range(runs_per_size):
            seed = base_seed + 1000 * size_index + run_index
            simulator = build_engine(
                engine,
                protocol_factory(),
                population_size,
                seed=seed,
                **engine_options,
            )
            converged = True
            convergence_time: float | None = None
            try:
                convergence_time = simulator.run_until(
                    predicate,
                    max_parallel_time=max_parallel_time,
                    check_interval=check_interval,
                )
            except ConvergenceError:
                converged = False
            result.add(
                RunRecord(
                    population_size=population_size,
                    seed=seed,
                    converged=converged,
                    convergence_time=convergence_time,
                    extra={
                        "engine": engine,
                        "interactions": simulator.interactions,
                        "outputs": {
                            str(output): count
                            for output, count in simulator.outputs().items()
                        },
                    },
                )
            )
    return result


def run_sequential_experiment(
    spec: ExperimentSpec, name: str = "figure2-sequential", track_states: bool = False
) -> SweepResult:
    """Run the sweep on the agent-level engine and collect run records."""
    result = SweepResult(name=name)
    for size_index, population_size in enumerate(spec.population_sizes):
        for run_index in range(spec.runs_per_size):
            seed = spec.seed_for(size_index, run_index)
            protocol = LogSizeEstimationProtocol(spec.params)
            simulation = Simulation(
                protocol=protocol,
                population_size=population_size,
                seed=seed,
                track_states=track_states,
            )
            converged = True
            convergence_time: float | None = None
            try:
                convergence_time = simulation.run_until(
                    all_agents_done,
                    max_parallel_time=spec.budget_for(population_size),
                )
            except ConvergenceError:
                converged = False
            try:
                error = estimate_error(simulation)["max_additive_error"]
            except ValueError:
                error = math.nan
            result.add(
                RunRecord(
                    population_size=population_size,
                    seed=seed,
                    converged=converged,
                    convergence_time=convergence_time,
                    max_additive_error=error,
                    extra={
                        "engine": "sequential",
                        "interactions": simulation.metrics.interactions,
                        "distinct_states": simulation.metrics.distinct_states,
                    },
                )
            )
    return result
