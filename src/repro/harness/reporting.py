"""Plain-text rendering of tables and series.

Everything the harness reports is plain text (no plotting dependencies are
available offline), rendered either as aligned tables or as a coarse ASCII
scatter/line chart — enough to eyeball Figure 2's shape directly in a
terminal or in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Sequence


#: Canonical per-phase column order for telemetry timing breakdowns.
PHASE_ORDER = ("draw", "apply", "check", "total")

#: Recorder timer names feeding each phase column.  ``apply`` falls back to
#: ``engine.step`` for the count-level engines, whose fused kernels do the
#: draw and the apply in one timed region.
_PHASE_SOURCES = {
    "draw": ("scheduler.draw_round",),
    "apply": ("engine.apply_round", "engine.step"),
    "check": ("engine.convergence_check",),
    "total": ("total",),
}


def phase_breakdown(timing) -> dict[str, float]:
    """Map a recorder timing dict onto the canonical per-phase columns.

    ``timing`` is the ``timing`` section of a run manifest
    (``record.extra["telemetry"]["timing"]``, seconds per recorder timer).
    Returns ``{phase: seconds}`` with only the phases the engine actually
    reported — the vector engine splits draw vs apply, count engines report
    one fused ``engine.step``, and every instrumented run-loop reports the
    convergence-check share.
    """
    if not timing:
        return {}
    breakdown: dict[str, float] = {}
    for phase in PHASE_ORDER:
        for source in _PHASE_SOURCES[phase]:
            value = timing.get(source)
            if value is not None:
                breakdown[phase] = float(value)
                break
    return breakdown


def mean_phase_breakdown(timings) -> dict[str, float]:
    """Per-phase means over many timing dicts (phases missing everywhere
    are omitted; a phase present in only some dicts averages over those)."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for timing in timings:
        for phase, value in phase_breakdown(timing).items():
            sums[phase] = sums.get(phase, 0.0) + value
            counts[phase] = counts.get(phase, 0) + 1
    return {
        phase: sums[phase] / counts[phase]
        for phase in PHASE_ORDER
        if phase in sums
    }


def format_cell(value) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row values; each row must have the same length as ``headers``.
    """
    rendered_rows = [[format_cell(value) for value in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render a coarse ASCII scatter of ``ys`` against ``xs``.

    Used by the CLI and EXPERIMENTS.md to show the Figure 2 shape without a
    plotting library.  ``log_x=True`` reproduces the paper's logarithmic
    population-size axis.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be non-empty and of equal length")
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")

    def x_transform(value: float) -> float:
        return math.log10(value) if log_x else value

    tx = [x_transform(x) for x in xs]
    x_min, x_max = min(tx), max(tx)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(tx, ys):
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"

    lines = [f"{y_label} (max {format_cell(y_max)}, min {format_cell(y_min)})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis = f"{x_label}: {format_cell(min(xs))} .. {format_cell(max(xs))}"
    if log_x:
        axis += " (log scale)"
    lines.append(axis)
    return "\n".join(lines)


def format_key_values(pairs: dict) -> str:
    """Render a dictionary as aligned ``key: value`` lines."""
    if not pairs:
        return "(empty)"
    width = max(len(str(key)) for key in pairs)
    return "\n".join(
        f"{str(key).ljust(width)} : {format_cell(value)}" for key, value in pairs.items()
    )
