"""Population-size grids for sweeps.

Figure 2 of the paper samples ``n in {10^2, 10^3, 10^4, 10^5}``; our
benchmarks default to a geometric grid capped at a size a pure-Python
reproduction can afford, overridable from the environment (see
``benchmarks/``).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.exceptions import ConfigurationError


def geometric_sizes(start: int, stop: int, factor: float = 2.0) -> list[int]:
    """Geometrically spaced population sizes from ``start`` up to ``stop`` (inclusive).

    Parameters
    ----------
    start, stop:
        First and maximum size, ``2 <= start <= stop``.
    factor:
        Multiplicative step (> 1).  Sizes are rounded to integers and
        deduplicated.
    """
    if start < 2:
        raise ConfigurationError(f"start must be at least 2, got {start}")
    if stop < start:
        raise ConfigurationError("stop must be at least start")
    if factor <= 1.0:
        raise ConfigurationError(f"factor must exceed 1, got {factor}")
    sizes = []
    size = float(start)
    while size <= stop + 1e-9:
        rounded = int(round(size))
        if not sizes or rounded != sizes[-1]:
            sizes.append(rounded)
        size *= factor
    return sizes


def figure2_sizes(max_size: int | None = None) -> list[int]:
    """The Figure 2 grid ``{10^2, 10^3, 10^4, 10^5}``, truncated to ``max_size``.

    The paper sweeps decades from 100 to 100 000; callers truncate to what
    their engine/time budget affords.
    """
    sizes = [100, 1_000, 10_000, 100_000]
    if max_size is None:
        return sizes
    if max_size < sizes[0]:
        raise ConfigurationError(f"max_size must be at least {sizes[0]}, got {max_size}")
    return [size for size in sizes if size <= max_size]


def parse_size_list(raw: str) -> list[int]:
    """Parse a comma-separated size list (used by the CLI and env overrides)."""
    try:
        sizes = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError as error:
        raise ConfigurationError(f"invalid size list {raw!r}") from error
    if not sizes or any(size < 2 for size in sizes):
        raise ConfigurationError(f"size list must contain integers >= 2, got {raw!r}")
    return sizes


def sizes_from_env(variable: str, default: Sequence[int]) -> list[int]:
    """Read a size list from an environment variable, falling back to ``default``.

    Benchmarks use this so that ``REPRO_FIG2_SIZES=100,1000,10000 pytest
    benchmarks/`` scales the sweep up without editing code.
    """
    raw = os.environ.get(variable)
    if not raw:
        return list(default)
    return parse_size_list(raw)
