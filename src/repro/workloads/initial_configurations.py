"""Initial-configuration generators.

The paper distinguishes three kinds of initial configurations:

* *all-identical* (leaderless, 1-dense) — where its own protocol starts and
  where Theorem 4.1 applies;
* *alpha-dense* — every present state occupies at least ``alpha n`` agents
  (still covered by Theorem 4.1);
* *with a leader* — one state present in count 1 (not dense), which is what
  makes the terminating protocols of Section 3.4 and of Michail [32]
  possible.

These helpers build such configurations for the count-based engine and for
the termination experiments.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.engine.configuration import Configuration
from repro.exceptions import ConfigurationError


def all_identical_configuration(state: Hashable, population_size: int) -> Configuration:
    """Every agent starts in ``state`` (the 1-dense leaderless configuration)."""
    return Configuration.uniform(state, population_size)


def leader_configuration(
    leader_state: Hashable, follower_state: Hashable, population_size: int
) -> Configuration:
    """One leader plus ``n - 1`` identical followers (not dense for ``n > 1/alpha``)."""
    if population_size < 2:
        raise ConfigurationError(
            f"a leader configuration needs at least 2 agents, got {population_size}"
        )
    return Configuration({leader_state: 1, follower_state: population_size - 1})


def two_state_split_configuration(
    first_state: Hashable,
    second_state: Hashable,
    population_size: int,
    first_fraction: float = 0.5,
) -> Configuration:
    """Split the population between two states (e.g. majority inputs).

    The configuration is ``alpha``-dense with
    ``alpha = min(first_fraction, 1 - first_fraction) - O(1/n)``.
    """
    if not 0.0 < first_fraction < 1.0:
        raise ConfigurationError(
            f"first_fraction must be in (0, 1), got {first_fraction}"
        )
    if population_size < 2:
        raise ConfigurationError("need at least 2 agents")
    first_count = max(1, min(population_size - 1, round(first_fraction * population_size)))
    return Configuration(
        {first_state: first_count, second_state: population_size - first_count}
    )


def alpha_dense_random_configuration(
    states: Sequence[Hashable],
    population_size: int,
    alpha: float,
    seed: int | None = None,
) -> Configuration:
    """A random configuration over ``states`` in which every state is ``alpha``-dense.

    Each state receives its guaranteed ``ceil(alpha n)`` agents and the
    remaining agents are assigned uniformly at random.  Requires
    ``alpha * len(states) <= 1``.
    """
    if not states:
        raise ConfigurationError("at least one state is required")
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    guaranteed = max(1, math.ceil(alpha * population_size))
    if guaranteed * len(states) > population_size:
        raise ConfigurationError(
            f"cannot make {len(states)} states {alpha}-dense with only "
            f"{population_size} agents"
        )
    rng = np.random.default_rng(seed)
    ordered = list(states)
    counts = {state: guaranteed for state in ordered}
    remaining = population_size - guaranteed * len(ordered)
    for index in rng.integers(len(ordered), size=remaining):
        counts[ordered[int(index)]] += 1
    return Configuration(counts)
