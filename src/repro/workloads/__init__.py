"""Workload and initial-configuration generators for experiments."""

from repro.workloads.initial_configurations import (
    alpha_dense_random_configuration,
    all_identical_configuration,
    leader_configuration,
    two_state_split_configuration,
)
from repro.workloads.populations import (
    geometric_sizes,
    figure2_sizes,
    parse_size_list,
)

__all__ = [
    "alpha_dense_random_configuration",
    "all_identical_configuration",
    "leader_configuration",
    "two_state_split_configuration",
    "geometric_sizes",
    "figure2_sizes",
    "parse_size_list",
]
