"""Reproduction of Doty & Eftekhari, "Efficient Size Estimation and
Impossibility of Termination in Uniform Dense Population Protocols" (PODC 2019).

The package provides:

* a population-protocol simulation substrate (:mod:`repro.engine`,
  :mod:`repro.protocols`, :mod:`repro.rng`),
* the paper's main contribution — the uniform leaderless
  ``Log-Size-Estimation`` protocol — and its variants (:mod:`repro.core`),
* the Section 4 termination theory made executable (:mod:`repro.termination`),
* the probability-theory substrate of the appendices (:mod:`repro.analysis`),
* experiment workloads and the harness that regenerates the paper's Figure 2
  and the theorem-level tables (:mod:`repro.workloads`, :mod:`repro.harness`),
* a command-line interface (:mod:`repro.cli`).

Quickstart
----------
>>> from repro import LogSizeEstimationProtocol, ProtocolParameters, Simulation
>>> from repro.core import all_agents_done
>>> protocol = LogSizeEstimationProtocol(ProtocolParameters.fast_test())
>>> simulation = Simulation(protocol, population_size=64, seed=1)
>>> _ = simulation.run_until(all_agents_done, max_parallel_time=5000)
>>> outputs = simulation.outputs()   # per-agent estimates of log2(64) = 6
"""

from repro._version import __version__
from repro.core.array_simulator import ArrayLogSizeSimulator, ArraySimulationResult
from repro.core.leader_terminating import LeaderTerminatingSizeEstimation
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.core.probability_one import ProbabilityOneUpperBoundProtocol
from repro.core.synthetic_coin import SyntheticCoinLogSizeEstimation
from repro.engine.count_simulator import CountSimulator
from repro.engine.simulator import Simulation
from repro.exceptions import ReproError
from repro.harness.figures import reproduce_figure2
from repro.rng import RandomSource

__all__ = [
    "__version__",
    "ArrayLogSizeSimulator",
    "ArraySimulationResult",
    "LeaderTerminatingSizeEstimation",
    "LogSizeEstimationProtocol",
    "ProtocolParameters",
    "ProbabilityOneUpperBoundProtocol",
    "SyntheticCoinLogSizeEstimation",
    "CountSimulator",
    "Simulation",
    "ReproError",
    "reproduce_figure2",
    "RandomSource",
]
