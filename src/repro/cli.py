"""Command-line interface of the reproduction library.

Subcommands
-----------
``repro estimate --n 512``
    Run one size-estimation simulation and print the outcome.
``repro figure2 --sizes 128,256,512,1024 --runs 3``
    Reproduce the Figure 2 sweep (vectorised engine) and print the table,
    the ASCII plot and optionally a CSV file.
``repro accuracy --sizes 256,1024``
    Theorem 3.1 accuracy table.
``repro states --sizes 256,1024``
    Lemma 3.9 state-complexity table.
``repro termination --sizes 64,128,256``
    Theorem 4.1 experiment: termination-signal time of a uniform dense
    protocol vs a leader-driven protocol.
``repro bounds --n 4096``
    Print the paper's claimed probability bounds for a population size.
``repro simulate --protocol epidemic --n 1000000 --engine batched``
    Run a classic finite-state protocol to convergence on a selectable
    engine (agent-level reference, count-based, or batched — see
    ``DESIGN.md``, Engine selection).
``repro sweep --protocol majority --sizes 10000,100000 --runs 10 --workers 4 --cache-dir .repro-cache --resume``
    Multi-size, multi-seed sweep of a finite-state workload through the
    parallel sweep driver: trials fan out over a worker pool, finished
    trials are appended to an on-disk JSON-lines cache, and ``--resume``
    replays cached trials so interrupted or repeated sweeps only execute
    what is missing (see ``DESIGN.md``, Sweep driver).
``repro sweep --engine vector --protocol figure2 --sizes 100000,1000000``
    The same sweep driver running the vector-engine workloads that are not
    finite-state: ``figure2`` (``Log-Size-Estimation`` to all-done) and
    ``leader-terminating`` (Theorem 3.13), at populations the agent engine
    cannot touch.
``repro simulate/sweep ... --scheduler two-block --scheduler-opt intra=0.95``
    Run under a non-uniform interaction scheduler (see ``repro engines`` for
    the engine × scheduler compatibility matrix and ``DESIGN.md``,
    Schedulers, for the scenario semantics).
``repro simulate/sweep/crn ... --backend native``
    Run the hot loops through a pluggable array backend (numpy reference,
    numba JIT, cffi-compiled C); unavailable backends warn and fall back
    to numpy (see ``DESIGN.md``, Array backends).
``repro profile --protocol epidemic --engine batched --backend native --interactions 2000000``
    cProfile one workload run on any engine × backend combination and
    print throughput plus a per-kernel timing breakdown.
``repro engines``
    Print the engine × scheduler compatibility matrix, one-line
    descriptions of every registered scheduler, and the array-backend
    availability report.
``repro protocols``
    List every registered workload — finite-state, vector and CRN — with
    its engine compatibility.
``repro crn info [--crn sir]``
    List the CRN workload library, or show one network's species,
    reactions, rate scale and lowerings.
``repro crn simulate --crn approximate-majority --n 1000000 --engine batched``
    Compile a reaction network onto an engine and run it to convergence;
    ``--reaction "L+L -> L+F" --init L:1 --chem-time 5`` simulates an
    ad-hoc network for a fixed chemical duration instead.
``repro crn sweep --crn sir --sizes 10000,100000 --runs 10 --workers 4``
    Sweep a CRN workload through the parallel driver; the full network
    (every rate constant) participates in the result-cache key.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro._version import __version__
from repro.analysis.error_bounds import theorem_3_1_summary
from repro.backend import (
    BACKEND_NAMES,
    ENV_BACKEND,
    backend_availability,
    get_backend,
)
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time
from repro.core.leader_terminating import LeaderTerminatingSizeEstimation
from repro.core.parameters import ProtocolParameters
from repro.engine.scheduler import (
    SCHEDULER_NAMES,
    SchedulerSpec,
    get_scheduler_policy,
)
from repro.engine.selection import (
    DEFAULT_SCHEDULERS,
    ENGINE_NAMES,
    build_engine,
    engine_scheduler_matrix,
)
from repro.exceptions import ConvergenceError, SimulationError
from repro.crn import (
    CRN,
    CRN_MODES,
    CRN_WORKLOADS,
    compile_crn,
    get_crn_workload,
)
from repro.harness.cache import ResultCache
from repro.harness.figures import reproduce_figure2
from repro.harness.parallel import (
    VECTOR_WORKLOADS,
    WORKLOADS,
    build_crn_trials,
    build_finite_state_trials,
    build_vector_trials,
    get_workload,
    run_trials,
)
from repro.harness.reporting import format_key_values, format_table
from repro.harness.results import SweepResult
from repro.store import DEFAULT_LEASE_SECONDS, StoreError, open_store
from repro.harness.tables import accuracy_table, state_complexity_table
from repro.protocols.leader_election import NonuniformCounterLeaderElection
from repro.termination.definitions import TerminationSpec
from repro.termination.impossibility import termination_time_sweep
from repro.workloads.populations import parse_size_list


def _parameters_from_args(args: argparse.Namespace) -> ProtocolParameters:
    if getattr(args, "fast", False):
        return ProtocolParameters.fast_test()
    return ProtocolParameters.paper()


def _sweep_persistence_from_args(args: argparse.Namespace, name: str):
    """Resolve ``--store`` / ``--cache-dir`` into ``(cache, store)``.

    ``--store`` opens a shared result store (always resuming — shared
    stores are never cleared, since other drivers may own records in
    them); ``--cache-dir`` keeps the historical local-JSONL behaviour,
    including the clear-unless-``--resume`` rule.
    """
    if getattr(args, "store", None):
        if args.cache_dir:
            raise SimulationError("pass either --store or --cache-dir, not both")
        lease = getattr(args, "lease", None) or DEFAULT_LEASE_SECONDS
        return None, open_store(args.store, lease_seconds=lease, name=name)
    cache = None
    if args.cache_dir:
        cache = ResultCache(args.cache_dir, name=name)
        if not args.resume:
            cache.clear()
    return cache, None


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--store`` / ``--lease`` flags of the sweep commands."""
    parser.add_argument(
        "--store", default="",
        help="shared result store URL: jsonl:DIR, sqlite:PATH or "
        "http://HOST:PORT (a `repro store serve` daemon).  Many concurrent "
        "drivers may point at one sqlite/http store and cooperate on the "
        "sweep; always resumes, mutually exclusive with --cache-dir",
    )
    parser.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="store claims only: seconds a claimed trial stays owned before "
        "a crashed driver's claim is reclaimed (size it above the slowest "
        f"single trial; default {DEFAULT_LEASE_SECONDS:g})",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--telemetry`` / ``--trace-spool`` / ``--progress`` flags."""
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable the observability recorder: every trial's record gains "
        "a run manifest (spec hash, seed lineage, engine/backend/scheduler "
        "resolution, hot-path counters, timing breakdown) under the "
        "'telemetry' key — excluded from cache keys, so records stay "
        "interchangeable with plain runs",
    )
    parser.add_argument(
        "--trace-spool", default="", metavar="DIR",
        help="spool span-level trace events to per-process JSONL files in "
        "DIR (implies --telemetry); merge into a Perfetto-loadable Chrome "
        "trace with `repro trace export --spool DIR --out FILE`",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live progress line on stderr while the sweep runs "
        "(trials done/executed/cached, throughput, ETA)",
    )


def _telemetry_from_args(args: argparse.Namespace):
    """Resolve the telemetry flags: enable the recorder, build the progress
    callback.  Returns ``(progress_view or None)``."""
    from repro.obs import ProgressView, set_telemetry

    spool = getattr(args, "trace_spool", "") or None
    if getattr(args, "telemetry", False) or spool:
        set_telemetry(True, spool_dir=spool)
    return ProgressView() if getattr(args, "progress", False) else None


def _print_telemetry_summary(outcome) -> None:
    """One-screen driver-side metrics after a ``--telemetry`` sweep."""
    from repro.obs import RECORDER

    if not RECORDER.enabled:
        return
    snapshot = RECORDER.snapshot()
    interesting = {
        name: value
        for name, value in sorted(snapshot["counters"].items())
        if not name.startswith("engine.interactions")
    }
    timing = {
        name: f"{seconds:.3f}s"
        for name, seconds in sorted(snapshot["timing"].items())
    }
    if interesting or timing:
        print()
        print("telemetry (driver-side totals):")
        print(format_key_values({**interesting, **timing}))
    if RECORDER.spool_dir:
        print(
            f"trace spool: {RECORDER.spool_dir} "
            f"(export: repro trace export --spool {RECORDER.spool_dir} "
            f"--out trace.json)"
        )


def _parse_scheduler_options(pairs: Sequence[str] | None) -> dict:
    """Parse repeated ``--scheduler-opt key=value`` flags.

    Values are coerced to int, then float, falling back to the raw string.
    """
    options: dict = {}
    for pair in pairs or ():
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise SimulationError(
                f"malformed --scheduler-opt {pair!r}; expected key=value"
            )
        value: object = raw
        for convert in (int, float):
            try:
                value = convert(raw)
                break
            except ValueError:
                continue
        options[key] = value
    return options


def _scheduler_from_args(args: argparse.Namespace) -> tuple[str | None, dict]:
    scheduler = getattr(args, "scheduler", None)
    options = _parse_scheduler_options(getattr(args, "scheduler_opt", None))
    if scheduler is None and options:
        raise SimulationError("--scheduler-opt requires --scheduler")
    return scheduler, options


def _scheduler_label(
    engine: str, scheduler: str | None, scheduler_options: dict | None
) -> str:
    """Human-readable scheduler identity, e.g. ``two-block(intra=0.95)``."""
    if scheduler is None:
        return DEFAULT_SCHEDULERS[engine]
    return SchedulerSpec.coerce(scheduler, options=scheduler_options or {}).label()


def _cmd_estimate(args: argparse.Namespace) -> int:
    params = _parameters_from_args(args)
    simulator = ArrayLogSizeSimulator(
        population_size=args.n, params=params, seed=args.seed
    )
    outcome = simulator.run_until_done(
        max_parallel_time=args.budget_factor
        * expected_convergence_time(args.n, params)
    )
    print(format_key_values(outcome.as_dict()))
    return 0 if outcome.converged else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    params = _parameters_from_args(args)
    sizes = parse_size_list(args.sizes)
    result = reproduce_figure2(
        population_sizes=sizes,
        runs_per_size=args.runs,
        params=params,
        base_seed=args.seed,
    )
    print("Figure 2 reproduction (convergence time vs population size)")
    print(result.table())
    print()
    print(result.ascii_plot())
    print()
    print(f"max additive error over all runs: {result.max_error_observed():.3f}")
    print(f"non-converged runs: {result.non_converged_runs}")
    slope = result.growth_exponent()
    if slope is not None:
        print(f"least-squares slope of time against log2(n)^2: {slope:.2f}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(result.to_csv())
        print(f"raw points written to {args.csv}")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    params = _parameters_from_args(args)
    table = accuracy_table(
        population_sizes=parse_size_list(args.sizes),
        runs_per_size=args.runs,
        params=params,
        base_seed=args.seed,
    )
    print("Theorem 3.1 accuracy (observed vs claimed additive error)")
    print(table.text)
    return 0


def _cmd_states(args: argparse.Namespace) -> int:
    params = _parameters_from_args(args)
    table = state_complexity_table(
        population_sizes=parse_size_list(args.sizes),
        params=params,
        base_seed=args.seed,
    )
    print("Lemma 3.9 state complexity (realised field ranges)")
    print(table.text)
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    sizes = parse_size_list(args.sizes)

    print("Theorem 4.1 experiment: time until the first terminated agent")
    print()
    print(f"(a) uniform dense protocol (counter threshold {args.threshold}):")
    uniform_spec = TerminationSpec(
        terminated_predicate=lambda state: state.terminated,
        description="uniform counter protocol",
    )
    uniform = termination_time_sweep(
        protocol_factory=lambda: NonuniformCounterLeaderElection(
            counter_threshold=args.threshold
        ),
        spec=uniform_spec,
        population_sizes=sizes,
        runs_per_size=args.runs,
        max_parallel_time=args.budget,
        seed=args.seed,
    )
    rows = [
        [obs.population_size, obs.mean_time, obs.max_time, obs.termination_probability]
        for obs in uniform
    ]
    print(format_table(["n", "mean time", "max time", "P(terminate)"], rows))
    print()

    print("(b) leader-driven terminating size estimation (Theorem 3.13):")
    leader_spec = TerminationSpec(
        terminated_predicate=lambda state: state.terminated,
        description="leader-driven size estimation",
    )
    leader = termination_time_sweep(
        protocol_factory=lambda: LeaderTerminatingSizeEstimation(
            params=ProtocolParameters.fast_test(),
            phase_count=8,
            termination_rounds_factor=1,
        ),
        spec=leader_spec,
        population_sizes=sizes,
        runs_per_size=args.runs,
        max_parallel_time=args.budget * 20,
        seed=args.seed,
    )
    rows = [
        [obs.population_size, obs.mean_time, obs.max_time, obs.termination_probability]
        for obs in leader
    ]
    print(format_table(["n", "mean time", "max time", "P(terminate)"], rows))
    print()
    print(
        "Expected shape: series (a) stays flat as n grows (Theorem 4.1); "
        "series (b) grows with n (the leader can delay the signal)."
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.protocol)
    protocol = workload.factory()
    predicate = workload.predicate
    population_size = (
        args.n if args.n is not None else workload.default_population
    )
    max_time = (
        args.max_time
        if args.max_time is not None
        else workload.default_budget(population_size)
    )
    engine_options = {}
    if args.batch_size is not None:
        engine_options["batch_size"] = args.batch_size
    if args.backend is not None:
        engine_options["backend"] = args.backend
    try:
        scheduler, scheduler_options = _scheduler_from_args(args)
        if scheduler is None and workload.scheduler is not None:
            # The registry may bake a scheduler variant into the workload.
            scheduler = workload.scheduler
            if not scheduler_options:
                scheduler_options = dict(workload.scheduler_options)
        simulator = build_engine(
            args.engine, protocol, population_size, seed=args.seed,
            scheduler=scheduler, scheduler_options=scheduler_options,
            **engine_options,
        )
    except SimulationError as error:
        print(f"repro simulate: error: {error}", file=sys.stderr)
        return 2
    scheduler_label = _scheduler_label(args.engine, scheduler, scheduler_options)
    print(
        f"{protocol.describe()} on the {args.engine} engine "
        f"({scheduler_label} scheduler): {workload.description}"
    )
    converged = True
    convergence_time = None
    try:
        convergence_time = simulator.run_until(
            predicate, max_parallel_time=max_time
        )
    except ConvergenceError:
        converged = False
    summary = {
        "population_size": population_size,
        "engine": args.engine,
        "scheduler": scheduler_label,
        "converged": converged,
        "convergence_parallel_time": convergence_time,
        "interactions": simulator.interactions,
        "distinct_states_present": len(simulator.configuration()),
    }
    for output, count in sorted(
        simulator.outputs().items(), key=lambda item: repr(item[0])
    ):
        summary[f"output[{output!r}]"] = count
    print(format_key_values(summary))
    return 0 if converged else 1


def _profile_location(filename: str, lineno: int) -> str:
    """Shorten a profile frame location to a repo-relative path."""
    if filename.startswith("~") or filename.startswith("<"):
        return "(builtin)"
    filename = filename.replace("\\", "/")
    marker = "/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        filename = "repro/" + filename[index + len(marker):]
    return f"{filename}:{lineno}"


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one workload run: cProfile totals plus a kernel breakdown."""
    import cProfile
    import pstats
    import time

    workload = get_workload(args.protocol)
    protocol = workload.factory()
    population_size = (
        args.n if args.n is not None else workload.default_population
    )
    max_time = (
        args.max_time
        if args.max_time is not None
        else workload.default_budget(population_size)
    )
    engine_options = {}
    if args.batch_size is not None:
        engine_options["batch_size"] = args.batch_size
    if args.backend is not None:
        engine_options["backend"] = args.backend
    try:
        scheduler, scheduler_options = _scheduler_from_args(args)
        simulator = build_engine(
            args.engine, protocol, population_size, seed=args.seed,
            scheduler=scheduler, scheduler_options=scheduler_options,
            **engine_options,
        )
    except SimulationError as error:
        print(f"repro profile: error: {error}", file=sys.stderr)
        return 2
    backend_name = getattr(getattr(simulator, "backend", None), "name", "numpy")
    print(
        f"profiling {protocol.describe()} on the {args.engine} engine "
        f"({backend_name} backend), n={population_size}"
    )

    profiler = cProfile.Profile()
    converged = True
    started = time.perf_counter()
    profiler.enable()
    try:
        if args.interactions is not None:
            simulator.run_interactions(args.interactions)
        else:
            try:
                simulator.run_until(
                    workload.predicate, max_parallel_time=max_time
                )
            except ConvergenceError:
                converged = False
    finally:
        profiler.disable()
    elapsed = time.perf_counter() - started

    summary = {
        "engine": args.engine,
        "backend": backend_name,
        "population_size": population_size,
        "interactions": simulator.interactions,
        "wall_seconds": round(elapsed, 4),
        "interactions_per_second": (
            round(simulator.interactions / elapsed) if elapsed > 0 else None
        ),
    }
    for counter in ("batched_batches", "fallback_batches", "rounds"):
        value = getattr(simulator, counter, None)
        if value is not None:
            summary[counter] = value
    if args.interactions is None:
        summary["converged"] = converged
    print(format_key_values(summary))

    stats = pstats.Stats(profiler)
    total_self = sum(entry[2] for entry in stats.stats.values())

    def _rows(entries: list, limit: int) -> list:
        entries.sort(key=lambda item: item[1][3], reverse=True)
        rows = []
        for (filename, lineno, name), (_, ncalls, tt, ct, _) in entries[:limit]:
            rows.append(
                [
                    name,
                    _profile_location(filename, lineno),
                    ncalls,
                    round(tt, 4),
                    round(ct, 4),
                    f"{100.0 * tt / total_self:.1f}%" if total_self else "-",
                ]
            )
        return rows

    headers = ["function", "where", "calls", "tottime", "cumtime", "self%"]
    print()
    print(f"top {args.top} functions by cumulative time:")
    print(format_table(headers, _rows(list(stats.stats.items()), args.top)))

    kernel_entries = [
        (func, data)
        for func, data in stats.stats.items()
        if "/repro/backend/" in func[0].replace("\\", "/")
        or "/repro/engine/" in func[0].replace("\\", "/")
    ]
    print()
    print("kernel breakdown (repro.backend and repro.engine frames):")
    if kernel_entries:
        print(format_table(headers, _rows(kernel_entries, args.top)))
    else:
        # A fully fused run (JIT/native backend) spends its time inside
        # compiled code, which cProfile cannot attribute to Python frames.
        print(
            "  (none recorded - the run stayed inside compiled kernels; "
            "see the builtin rows above)"
        )
    return 0 if converged else 1


def _print_sweep_summary(result: SweepResult) -> None:
    summaries = result.summary_by_size()
    rows = []
    for size in result.population_sizes():
        summary = summaries.get(size)
        records = result.records_for(size)
        rows.append(
            [
                size,
                len(records),
                sum(1 for record in records if not record.converged),
                result.convergence_rate(size),
                summary.mean if summary else None,
                summary.minimum if summary else None,
                summary.maximum if summary else None,
            ]
        )
    print(
        format_table(
            [
                "n",
                "runs",
                "non-conv",
                "P(converged)",
                "mean time",
                "min time",
                "max time",
            ],
            rows,
        )
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    sizes = parse_size_list(args.sizes)
    is_vector_workload = args.protocol in VECTOR_WORKLOADS
    try:
        scheduler, scheduler_options = _scheduler_from_args(args)
        if is_vector_workload:
            if args.engine != "vector":
                raise SimulationError(
                    f"workload {args.protocol!r} runs on the vector engine; "
                    f"pass --engine vector"
                )
            if args.batch_size is not None:
                raise SimulationError(
                    "--batch-size only applies to the batched engine, not to "
                    "vector workloads"
                )
            if args.check_interval is not None:
                raise SimulationError(
                    "--check-interval does not apply to vector workloads "
                    "(convergence is checked every round)"
                )
            engine_options = {}
            if args.phase_count is not None:
                if args.protocol != "leader-terminating":
                    raise SimulationError(
                        "--phase-count only applies to the leader-terminating "
                        "workload"
                    )
                engine_options["phase_count"] = args.phase_count
            if args.backend is not None:
                engine_options["backend"] = args.backend
            specs = build_vector_trials(
                population_sizes=sizes,
                runs_per_size=args.runs,
                protocol=args.protocol,
                params=_parameters_from_args(args),
                base_seed=args.seed,
                max_parallel_time=args.max_time,
                scheduler=scheduler,
                scheduler_options=scheduler_options,
                **engine_options,
            )
        else:
            if args.phase_count is not None:
                raise SimulationError(
                    "--phase-count only applies to the leader-terminating "
                    "vector workload"
                )
            if args.fast:
                raise SimulationError(
                    "--fast only applies to vector workloads (finite-state "
                    "workloads have no protocol constants to scale down)"
                )
            workload = get_workload(args.protocol)
            budget = (
                (lambda n: args.max_time)
                if args.max_time is not None
                else workload.default_budget
            )
            engine_options = {}
            if args.batch_size is not None:
                engine_options["batch_size"] = args.batch_size
            if args.backend is not None:
                engine_options["backend"] = args.backend
            specs = build_finite_state_trials(
                population_sizes=sizes,
                runs_per_size=args.runs,
                base_seed=args.seed,
                engine=args.engine,
                max_parallel_time=budget,
                check_interval=args.check_interval,
                protocol=args.protocol,
                scheduler=scheduler,
                scheduler_options=scheduler_options,
                **engine_options,
            )
    except SimulationError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2

    try:
        cache, store = _sweep_persistence_from_args(
            args, f"{args.protocol}-{args.engine}"
        )
        progress_view = _telemetry_from_args(args)
        try:
            outcome = run_trials(
                specs, workers=args.workers, cache=cache, store=store,
                lease_seconds=args.lease, progress=progress_view,
            )
        finally:
            if progress_view is not None:
                progress_view.close()
    except SimulationError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2

    result = SweepResult(
        name=f"sweep-{args.protocol}-{args.engine}", records=outcome.records
    )
    # Label from the specs actually built, so a workload's registry-baked
    # scheduler variant is reported correctly even without --scheduler.
    scheduler_label = _scheduler_label(
        args.engine, specs[0].scheduler, dict(specs[0].scheduler_options)
    )
    print(
        f"sweep of {args.protocol!r} on the {args.engine} engine "
        f"({scheduler_label} scheduler; {len(sizes)} sizes x {args.runs} runs, "
        f"workers={args.workers})"
    )
    print(
        f"trials: {len(specs)} total, {outcome.executed} executed, "
        f"{outcome.from_cache} from cache"
    )
    if cache is not None:
        print(f"cache: {cache.path}")
    if store is not None:
        print(f"store: {store.describe()}")
    print()
    _print_sweep_summary(result)
    _print_telemetry_summary(outcome)
    return 0 if all(record.converged for record in outcome.records) else 1


def _cmd_engines(args: argparse.Namespace) -> int:
    """Print the engine × scheduler compatibility matrix."""
    if getattr(args, "verify", False):
        return _verify_capability_matrix()
    matrix = engine_scheduler_matrix()
    print("engine x scheduler compatibility (* = engine default):")
    rows = []
    for engine in ENGINE_NAMES:
        supported = matrix[engine]
        row = [engine]
        for name in SCHEDULER_NAMES:
            if name not in supported:
                cell = "-"
            elif name == DEFAULT_SCHEDULERS[engine]:
                cell = "yes *"
            else:
                cell = "yes"
            row.append(cell)
        rows.append(row)
    print(format_table(["engine", *SCHEDULER_NAMES], rows))
    print()
    print("schedulers:")
    for name in SCHEDULER_NAMES:
        policy_cls = get_scheduler_policy(name)
        print(f"  {name}: {policy_cls.description}")
        if policy_cls.option_names:
            print(f"      options: {', '.join(policy_cls.option_names)}")
    print()
    print("array backends (--backend NAME; env default: " + ENV_BACKEND + "):")
    availability = backend_availability()
    for name in BACKEND_NAMES:
        reason = availability[name]
        status = "available" if reason is None else f"unavailable: {reason}"
        print(f"  {name}: {get_backend(name).describe()} [{status}]")
    print()
    print(
        "Pick one with --scheduler NAME [--scheduler-opt key=value ...] on "
        "`repro simulate` and `repro sweep`; see DESIGN.md (Schedulers) for "
        "time semantics and paper fidelity.  Backends swap the hot-loop "
        "kernels without changing engine semantics (DESIGN.md, Array "
        "backends); unavailable backends fall back to numpy with a warning."
    )
    return 0


def _verify_capability_matrix() -> int:
    """`repro engines --verify`: every declared cell must be grid-tested."""
    from repro.staticcheck.contracts import (
        capability_matrix_diagnostics,
        declared_backend_cells,
        declared_scheduler_cells,
    )

    diagnostics = capability_matrix_diagnostics(".")
    declared = len(declared_scheduler_cells()) + len(declared_backend_cells())
    if not diagnostics:
        print(
            f"capability matrix verified: all {declared} declared "
            f"(engine x scheduler) and (engine x backend) cells are "
            f"exercised by the cross-engine test grid"
        )
        return 0
    print(
        f"capability matrix verification found {len(diagnostics)} problem(s):",
        file=sys.stderr,
    )
    for diagnostic in diagnostics:
        print(
            f"  {diagnostic.rule} {diagnostic.location}: {diagnostic.message}",
            file=sys.stderr,
        )
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    """`repro check`: run the static analyzers and report diagnostics."""
    from repro.staticcheck import render_json, render_text, run_check

    try:
        diagnostics, code = run_check(
            root=args.root,
            only=args.only or None,
            lint_paths=args.paths or None,
            waiver_file=args.waivers or None,
            update_baseline=args.update_baseline,
        )
    except (ValueError, OSError) as error:
        print(f"repro check: error: {error}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(diagnostics))
    return code


def _cmd_protocols(args: argparse.Namespace) -> int:
    """List every registered workload with its engine compatibility."""
    all_engines = ",".join(ENGINE_NAMES)
    rows = []
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]
        rows.append([name, "finite-state", all_engines, workload.description])
    for name in sorted(VECTOR_WORKLOADS):
        workload = VECTOR_WORKLOADS[name]
        rows.append([name, "vector", "vector", workload.description])
    for name in sorted(CRN_WORKLOADS):
        workload = CRN_WORKLOADS[name]
        rows.append([name, "crn", all_engines, workload.description])
    print("registered workloads:")
    print(format_table(["name", "kind", "engines", "description"], rows))
    print()
    print(
        "finite-state workloads run via `repro simulate/sweep --protocol NAME` "
        "on any engine; vector workloads via `repro sweep --engine vector`; "
        "CRN workloads via `repro crn simulate/sweep --crn NAME` (the thinned "
        "lowering, --mode thinned, is count/batched only).  `repro engines` "
        "prints the engine x scheduler matrix."
    )
    return 0


def _parse_species_values(text: str | None, flag: str, convert) -> dict:
    """Parse ``SPECIES:VALUE,SPECIES:VALUE`` flags for CRN initial conditions."""
    values: dict = {}
    for entry in (text or "").split(","):
        entry = entry.strip()
        if not entry:
            continue
        species, separator, raw = entry.partition(":")
        if not separator or not species:
            raise SimulationError(
                f"malformed {flag} entry {entry!r}; expected SPECIES:VALUE"
            )
        try:
            values[species.strip()] = convert(raw.strip())
        except ValueError:
            raise SimulationError(
                f"malformed {flag} value {raw!r} for species {species!r}"
            ) from None
    return values


def _crn_from_args(args: argparse.Namespace) -> tuple[CRN, bool]:
    """Resolve the network: a registered workload or an ad-hoc spec.

    Returns ``(crn, registered)``.
    """
    reactions = list(args.reaction or [])
    if args.crn is not None:
        if reactions or args.init or args.seed_init:
            raise SimulationError(
                "--crn names a registered workload; ad-hoc --reaction/--init/"
                "--seed-init flags cannot be combined with it"
            )
        return get_crn_workload(args.crn).crn, True
    if not reactions:
        raise SimulationError(
            "no network given: pass --crn NAME (see `repro crn info`) or at "
            "least one --reaction 'A + B -> C + D @ k'"
        )
    fractions = _parse_species_values(args.init, "--init", float)
    seeds = _parse_species_values(args.seed_init, "--seed-init", int)
    return (
        CRN.from_spec(reactions, name=args.name, seeds=seeds, fractions=fractions),
        False,
    )


def _crn_engines(mode: str) -> tuple[str, ...]:
    """Engines a CRN lowering can build on."""
    return ("count", "batched") if mode == "thinned" else tuple(ENGINE_NAMES)


def _regime_thresholds_arg(text: str) -> tuple[float, float]:
    """Parse ``--regime-thresholds CRITICAL,ODE`` into a float pair."""
    parts = text.split(",")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"expected CRITICAL,ODE (two comma-separated numbers), got {text!r}"
        )
    try:
        critical, ode = (float(part) for part in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected CRITICAL,ODE (two comma-separated numbers), got {text!r}"
        ) from None
    return (critical, ode)


def _multiscale_options_from_args(args: argparse.Namespace) -> dict:
    """Collect --leap-eps/--regime-thresholds, rejecting them off-engine."""
    options = {}
    if args.leap_eps is not None:
        options["leap_eps"] = args.leap_eps
    if args.regime_thresholds is not None:
        options["regime_thresholds"] = args.regime_thresholds
    if options and args.engine != "multiscale":
        raise SimulationError(
            f"--leap-eps/--regime-thresholds tune the multiscale engine; "
            f"the {args.engine} engine does not read them "
            f"(add --engine multiscale)"
        )
    return options


def _cmd_crn_info(args: argparse.Namespace) -> int:
    if args.crn is None and not args.reaction:
        print("registered CRN workloads (see also `repro protocols`):")
        rows = [
            [
                name,
                len(CRN_WORKLOADS[name].crn.species()),
                len(CRN_WORKLOADS[name].crn.reactions),
                CRN_WORKLOADS[name].default_population,
                CRN_WORKLOADS[name].description,
            ]
            for name in sorted(CRN_WORKLOADS)
        ]
        print(format_table(["name", "species", "reactions", "default n", "description"], rows))
        print()
        print(
            "`repro crn info --crn NAME` shows one network; `repro crn simulate"
            " --reaction 'A + B -> C + D @ k' ...` runs an ad-hoc one."
        )
        return 0
    try:
        crn, registered = _crn_from_args(args)
        uniform = compile_crn(crn)
        thinned = compile_crn(crn, mode="thinned")
    except SimulationError as error:
        print(f"repro crn info: error: {error}", file=sys.stderr)
        return 2
    print(crn.describe())
    print()
    print("reactions:")
    for reaction in crn.reactions:
        print(f"  {reaction.text()}")
    print()
    summary = {
        "species": ", ".join(crn.species()),
        "seeds": ", ".join(f"{s}:{c}" for s, c in crn.seeds) or "-",
        "fractions": ", ".join(f"{s}:{w:g}" for s, w in crn.fractions),
        "rate_scale": uniform.rate_scale,
        "uniform lowering engines": ",".join(_crn_engines("uniform")),
        "thinned lowering engines": ",".join(_crn_engines("thinned")),
        "thinned activity rates": ", ".join(
            f"{s}:{r:g}" for s, r in thinned.state_rates
        ),
        "compiled states": uniform.protocol.compiled().num_states,
        "reactive ordered pairs": uniform.protocol.compiled().reactive_pair_count(),
    }
    if registered:
        workload = get_crn_workload(args.crn)
        summary["workload"] = workload.description
        summary["default population"] = workload.default_population
        summary["chemical budget at default n"] = workload.default_chemical_budget(
            workload.default_population
        )
    print(format_key_values(summary))
    print()
    print(
        "parallel time = rate_scale x chemical time under the uniform "
        "lowering (DESIGN.md, CRN front-end)."
    )
    return 0


def _cmd_crn_simulate(args: argparse.Namespace) -> int:
    try:
        crn, registered = _crn_from_args(args)
        compiled = compile_crn(crn, mode=args.mode)
        if args.engine not in _crn_engines(args.mode):
            raise SimulationError(
                f"the {args.mode} lowering cannot run on the {args.engine} "
                f"engine; supported: {', '.join(_crn_engines(args.mode))}"
            )
        workload = get_crn_workload(args.crn) if registered else None
        if workload is None and args.mode == "thinned":
            raise SimulationError(
                "an ad-hoc network runs for a fixed --chem-time, which the "
                "thinned lowering cannot honour (its event clock has no "
                "constant mapping to chemical time); use --mode uniform, or "
                "a registered workload with a convergence predicate"
            )
        population_size = (
            args.n
            if args.n is not None
            else (workload.default_population if workload else 10_000)
        )
        if args.chem_time is not None:
            chemical_budget = args.chem_time
        elif workload is not None:
            chemical_budget = workload.default_chemical_budget(population_size)
        else:
            raise SimulationError(
                "an ad-hoc network needs --chem-time (the chemical duration "
                "to simulate); registered workloads carry a default budget"
            )
        engine_options = _multiscale_options_from_args(args)
        if args.batch_size is not None:
            engine_options["batch_size"] = args.batch_size
        if args.backend is not None:
            engine_options["backend"] = args.backend
        simulator = compiled.build(
            args.engine, population_size, seed=args.seed, **engine_options
        )
    except SimulationError as error:
        print(f"repro crn simulate: error: {error}", file=sys.stderr)
        return 2
    budget_parallel = compiled.rate_scale * chemical_budget
    print(
        f"{compiled.protocol.describe()} on the {args.engine} engine"
        + (f": {workload.description}" if workload else "")
    )
    summary = {
        "population_size": population_size,
        "engine": args.engine,
        "mode": args.mode,
        "rate_scale": compiled.rate_scale,
    }
    converged = True
    if workload is not None:
        convergence_time = None
        try:
            convergence_time = simulator.run_until(
                workload.predicate, max_parallel_time=budget_parallel
            )
        except ConvergenceError:
            converged = False
        summary["converged"] = converged
        summary["parallel_time"] = convergence_time
    else:
        # No convergence predicate exists for an ad-hoc network: the run
        # simply covers the requested duration, so no "converged" claim is
        # reported (and the exit code only reflects successful execution).
        simulator.run_parallel_time(budget_parallel)
        convergence_time = simulator.parallel_time
        summary["parallel_time"] = convergence_time
    summary["interactions"] = simulator.interactions
    if args.engine == "multiscale":
        for key, value in simulator.regime_stats().items():
            summary[f"regime[{key}]"] = value
    if compiled.time_exact and convergence_time is not None:
        summary["chemical_time"] = convergence_time / compiled.rate_scale
    for state, count in sorted(simulator.configuration().items()):
        summary[f"count[{state}]"] = count
    print(format_key_values(summary))
    return 0 if converged else 1


def _cmd_crn_sweep(args: argparse.Namespace) -> int:
    sizes = parse_size_list(args.sizes)
    try:
        if args.engine not in _crn_engines(args.mode):
            raise SimulationError(
                f"the {args.mode} lowering cannot run on the {args.engine} "
                f"engine; supported: {', '.join(_crn_engines(args.mode))}"
            )
        engine_options = _multiscale_options_from_args(args)
        if args.batch_size is not None:
            engine_options["batch_size"] = args.batch_size
        if args.backend is not None:
            engine_options["backend"] = args.backend
        specs = build_crn_trials(
            population_sizes=sizes,
            runs_per_size=args.runs,
            crn=args.crn,
            base_seed=args.seed,
            engine=args.engine,
            mode=args.mode,
            max_chemical_time=args.chem_time,
            check_interval=args.check_interval,
            **engine_options,
        )
    except SimulationError as error:
        print(f"repro crn sweep: error: {error}", file=sys.stderr)
        return 2

    try:
        cache, store = _sweep_persistence_from_args(
            args, f"crn-{args.crn}-{args.engine}"
        )
        progress_view = _telemetry_from_args(args)
        try:
            outcome = run_trials(
                specs, workers=args.workers, cache=cache, store=store,
                lease_seconds=args.lease, progress=progress_view,
            )
        finally:
            if progress_view is not None:
                progress_view.close()
    except SimulationError as error:
        print(f"repro crn sweep: error: {error}", file=sys.stderr)
        return 2

    result = SweepResult(
        name=f"crn-sweep-{args.crn}-{args.engine}", records=outcome.records
    )
    print(
        f"CRN sweep of {args.crn!r} on the {args.engine} engine "
        f"({args.mode} lowering; {len(sizes)} sizes x {args.runs} runs, "
        f"workers={args.workers})"
    )
    print(
        f"trials: {len(specs)} total, {outcome.executed} executed, "
        f"{outcome.from_cache} from cache"
    )
    if cache is not None:
        print(f"cache: {cache.path}")
    if store is not None:
        print(f"store: {store.describe()}")
    print()
    _print_sweep_summary(result)
    # Multiscale trials carry per-regime work counters in their records
    # (exact SSA events, tau-leaps, ODE steps, regime switches); aggregate
    # them per population size so the sweep output shows where the engine
    # actually spent its events — previously only `repro crn simulate`
    # exposed this.
    regime_rows = []
    by_size: dict[int, dict[str, int]] = {}
    for record in outcome.records:
        regime = record.extra.get("regime")
        if regime:
            totals = by_size.setdefault(record.population_size, {})
            for name, value in regime.items():
                totals[name] = totals.get(name, 0) + int(value)
    for size in sorted(by_size):
        totals = by_size[size]
        regime_rows.append(
            [
                size,
                totals.get("exact_events", 0),
                totals.get("leaps", 0),
                totals.get("ode_steps", 0),
                totals.get("regime_switches", 0),
            ]
        )
    if regime_rows:
        print()
        print("multiscale regime totals (summed over runs):")
        print(
            format_table(
                ["n", "exact events", "leaps", "ode steps", "switches"],
                regime_rows,
            )
        )
    _print_telemetry_summary(outcome)
    return 0 if all(record.converged for record in outcome.records) else 1


def _cmd_store_serve(args: argparse.Namespace) -> int:
    from repro.store.server import serve_store

    try:
        server = serve_store(
            args.db,
            host=args.host,
            port=args.port,
            lease_seconds=args.lease,
            verbose=args.verbose,
        )
    except OSError as error:
        print(f"repro store serve: error: {error}", file=sys.stderr)
        return 2
    print(f"serving {server.store.describe()} at {server.url}")
    print("point sweep drivers at it with: repro sweep --store " + server.url)
    server.serve_forever()
    server.stop()
    return 0


def _watch_store_status(store, interval: float, iterations: int | None) -> int:
    """Poll ``store.status()`` and render per-driver health until interrupted.

    The snapshot diffing (per-driver completion attribution, lease churn,
    stale alerts) lives in :class:`repro.obs.StatusWatcher`; this loop only
    polls and prints.  ``iterations`` bounds the poll count (None = forever,
    for terminals; tests and scripts pass a finite count).
    """
    import time as _time

    from repro.obs import StatusWatcher

    watcher = StatusWatcher()
    polls = 0
    print(f"watching {store.describe()} every {interval:g}s (ctrl-c to stop)")
    try:
        while iterations is None or polls < iterations:
            status = store.status()
            for line in watcher.update(status):
                print(line)
            sys.stdout.flush()
            polls += 1
            if iterations is not None and polls >= iterations:
                break
            _time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_store_status(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
        if getattr(args, "watch", False):
            try:
                return _watch_store_status(
                    store, args.interval, args.iterations
                )
            finally:
                store.close()
        status = store.status()
    except SimulationError as error:
        print(f"repro store status: error: {error}", file=sys.stderr)
        return 2
    print(f"store: {store.describe()}")
    print(
        format_key_values(
            {
                "completed trials": status.completed,
                "leased (in progress)": status.leased,
                "stale leases (reclaimable)": status.stale,
            }
        )
    )
    if status.leases:
        print()
        print("leases:")
        rows = [
            [
                entry.key[:16],
                entry.owner,
                "-" if entry.expires is None else f"{entry.expires:.0f}",
                "STALE" if entry.stale else "live",
            ]
            for entry in status.leases
        ]
        print(format_table(["key", "owner", "expires (unix)", "state"], rows))
    if status.workloads:
        print()
        print("throughput by workload (completed trials):")
        rows = []
        for entry in status.workloads:
            rate = entry.interactions_per_second
            rows.append(
                [
                    entry.workload,
                    str(entry.trials),
                    f"{entry.interactions:,}",
                    f"{entry.wall_seconds:.2f}",
                    "-" if rate is None else f"{rate:,.0f}",
                ]
            )
        print(
            format_table(
                ["workload", "trials", "interactions", "wall s", "inter/s"],
                rows,
            )
        )
    store.close()
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs import export_spool

    try:
        trace = export_spool(args.spool, args.out)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"repro trace export: error: {error}", file=sys.stderr)
        return 2
    events = trace["traceEvents"]
    pids = sorted({event.get("pid") for event in events})
    print(
        f"wrote {args.out}: {len(events)} events from {len(pids)} process(es)"
    )
    print("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    return 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    from repro.obs import validate_trace

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"repro trace validate: error: {error}", file=sys.stderr)
        return 2
    problems = validate_trace(trace)
    if problems:
        for problem in problems:
            print(f"INVALID {problem}")
        print(f"{args.trace}: {len(problems)} schema problem(s)")
        return 1
    events = trace.get("traceEvents", [])
    print(f"{args.trace}: valid Chrome trace ({len(events)} events)")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    summary = theorem_3_1_summary(args.n)
    if args.json:
        print(json.dumps(summary, default=str, indent=2))
    else:
        print(f"Claimed bounds of Theorem 3.1 at n = {args.n}")
        print(format_key_values(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Size Estimation and Impossibility of "
            "Termination in Uniform Dense Population Protocols' (PODC 2019)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    estimate = subparsers.add_parser("estimate", help="run one size estimation")
    estimate.add_argument("--n", type=int, default=512, help="population size")
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--budget-factor", type=float, default=4.0)
    estimate.add_argument("--fast", action="store_true", help="use scaled-down constants")
    estimate.set_defaults(handler=_cmd_estimate)

    figure2 = subparsers.add_parser("figure2", help="reproduce Figure 2")
    figure2.add_argument("--sizes", default="128,256,512,1024")
    figure2.add_argument("--runs", type=int, default=3)
    figure2.add_argument("--seed", type=int, default=2019)
    figure2.add_argument("--csv", default="", help="optional CSV output path")
    figure2.add_argument("--fast", action="store_true")
    figure2.set_defaults(handler=_cmd_figure2)

    accuracy = subparsers.add_parser("accuracy", help="Theorem 3.1 accuracy table")
    accuracy.add_argument("--sizes", default="256,512,1024")
    accuracy.add_argument("--runs", type=int, default=3)
    accuracy.add_argument("--seed", type=int, default=7)
    accuracy.add_argument("--fast", action="store_true")
    accuracy.set_defaults(handler=_cmd_accuracy)

    states = subparsers.add_parser("states", help="Lemma 3.9 state-complexity table")
    states.add_argument("--sizes", default="256,512,1024")
    states.add_argument("--seed", type=int, default=11)
    states.add_argument("--fast", action="store_true")
    states.set_defaults(handler=_cmd_states)

    termination = subparsers.add_parser(
        "termination", help="Theorem 4.1 termination-time experiment"
    )
    termination.add_argument("--sizes", default="32,64,128")
    termination.add_argument("--runs", type=int, default=3)
    termination.add_argument("--threshold", type=int, default=10)
    termination.add_argument("--budget", type=float, default=200.0)
    termination.add_argument("--seed", type=int, default=0)
    termination.set_defaults(handler=_cmd_termination)

    bounds = subparsers.add_parser("bounds", help="print the claimed bounds for n")
    bounds.add_argument("--n", type=int, default=4096)
    bounds.add_argument("--json", action="store_true")
    bounds.set_defaults(handler=_cmd_bounds)

    engines = subparsers.add_parser(
        "engines",
        help="print the engine x scheduler compatibility matrix",
        description=(
            "Show which interaction schedulers each simulation engine can "
            "run, the per-engine defaults, and every scheduler's options."
        ),
    )
    engines.add_argument(
        "--verify",
        action="store_true",
        help="check that every declared (engine x scheduler) and (engine x "
        "backend) cell is exercised by the cross-engine test grid; exit 1 "
        "and list untested cells otherwise (requires the repo checkout)",
    )
    engines.set_defaults(handler=_cmd_engines)

    check = subparsers.add_parser(
        "check",
        help="static analysis: protocol/CRN semantics, determinism lint, "
        "cache-key and capability-matrix contracts, typing ratchet",
        description=(
            "Run the static analyzers (see DESIGN.md, 'Static analysis'). "
            "Exit 0 when every error-severity finding is waived, 1 "
            "otherwise; warnings and info never fail. Committed waivers "
            "live in repro.staticcheck.waivers, each with a justification; "
            "--waivers adds ad-hoc ones from a JSON file."
        ),
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    check.add_argument(
        "--only", action="append", default=None, metavar="FAMILY",
        choices=("semantic", "lint", "contracts", "typing"),
        help="run only this analyzer family (repeatable; default: all)",
    )
    check.add_argument(
        "--root", default=".",
        help="repository root (default: current directory); lint locations "
        "and waiver prefixes are relative to it",
    )
    check.add_argument(
        "--paths", action="append", default=None, metavar="PATH",
        help="override the determinism lint's target files/directories "
        "(default: src/repro; repeatable)",
    )
    check.add_argument(
        "--waivers", default=None, metavar="FILE",
        help="extra waivers as JSON: "
        '{"waivers": [{"rule": ..., "location": ..., "justification": ...}]}',
    )
    check.add_argument(
        "--update-baseline", action="store_true",
        help="typing family: rewrite staticcheck_typing_baseline.json with "
        "the current strict-mypy error counts",
    )
    check.set_defaults(handler=_cmd_check)

    protocols = subparsers.add_parser(
        "protocols",
        help="list registered finite-state, vector and CRN workloads",
        description=(
            "Show every registered workload with its kind and the engines it "
            "can run on (mirrors `repro engines` for workloads)."
        ),
    )
    protocols.set_defaults(handler=_cmd_protocols)

    crn = subparsers.add_parser(
        "crn",
        help="declarative CRN front-end: simulate/sweep reaction networks",
        description=(
            "Specify a protocol as a chemical reaction network — a registered "
            "workload (--crn NAME) or ad-hoc reaction specs — compile it onto "
            "an engine, and simulate mass-action kinetics exactly (see "
            "DESIGN.md, CRN front-end)."
        ),
    )
    crn_sub = crn.add_subparsers(dest="crn_command", required=True)

    def _add_network_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--crn",
            choices=sorted(CRN_WORKLOADS),
            default=None,
            help="registered CRN workload (see `repro crn info`)",
        )
        parser.add_argument(
            "--reaction", action="append", default=None, metavar="SPEC",
            help="ad-hoc reaction 'A + B -> C + D @ k', repeatable "
            "(unimolecular: 'A -> B @ k')",
        )
        parser.add_argument(
            "--init", default="", metavar="SPECIES:FRAC,...",
            help="ad-hoc networks: relative initial fractions, e.g. "
            "'A:0.52,B:0.48'",
        )
        parser.add_argument(
            "--seed-init", default="", metavar="SPECIES:COUNT,...",
            help="ad-hoc networks: exact seeded agent counts, e.g. 'I:1'",
        )
        parser.add_argument(
            "--name", default="adhoc", help="name of an ad-hoc network"
        )

    crn_info = crn_sub.add_parser(
        "info", help="list CRN workloads or inspect one network"
    )
    _add_network_flags(crn_info)
    crn_info.set_defaults(handler=_cmd_crn_info)

    crn_simulate = crn_sub.add_parser(
        "simulate", help="compile a network onto an engine and run it"
    )
    _add_network_flags(crn_simulate)
    crn_simulate.add_argument(
        "--n", type=int, default=None,
        help="population size (default: the workload's, or 10000 ad-hoc)",
    )
    crn_simulate.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="batched",
        help="simulation engine (the thinned lowering needs count or batched)",
    )
    crn_simulate.add_argument(
        "--mode", choices=list(CRN_MODES), default="uniform",
        help="lowering mode: uniform (exact kinetics and times, any engine) "
        "or thinned (exact reaction sequence via state-weighted rates, "
        "fewer null interactions)",
    )
    crn_simulate.add_argument("--seed", type=int, default=0)
    crn_simulate.add_argument(
        "--chem-time", type=float, default=None,
        help="chemical-time budget (registered workloads default to their "
        "own; ad-hoc networks run for exactly this duration)",
    )
    crn_simulate.add_argument(
        "--batch-size", type=int, default=None,
        help="batched engine only: interactions per batch (default ~sqrt(n))",
    )
    crn_simulate.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="array backend for the hot-loop kernels (default: "
        "$REPRO_BACKEND or numpy; see `repro engines`)",
    )
    crn_simulate.add_argument(
        "--leap-eps", type=float, default=None,
        help="multiscale engine only: tau-leap relative-propensity "
        "tolerance (Cao's epsilon; default 0.05, smaller = more exact)",
    )
    crn_simulate.add_argument(
        "--regime-thresholds", type=_regime_thresholds_arg, default=None,
        metavar="CRITICAL,ODE",
        help="multiscale engine only: per-species count thresholds — below "
        "CRITICAL a channel fires by exact SSA, above ODE the whole system "
        "integrates deterministically (default 20,1e5)",
    )
    crn_simulate.set_defaults(handler=_cmd_crn_simulate)

    crn_sweep = crn_sub.add_parser(
        "sweep",
        help="multi-size, multi-seed CRN sweep (parallel workers, resumable cache)",
        description=(
            "Sweep a registered CRN workload through the parallel driver.  "
            "The full network — every rate constant — participates in the "
            "trial cache keys, so cached results are never replayed for a "
            "modified network."
        ),
    )
    crn_sweep.add_argument(
        "--crn", choices=sorted(CRN_WORKLOADS), required=True,
        help="registered CRN workload to sweep",
    )
    crn_sweep.add_argument(
        "--sizes", default="1000,10000,100000",
        help="comma-separated population sizes",
    )
    crn_sweep.add_argument("--runs", type=int, default=3, help="runs (seeds) per size")
    crn_sweep.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="batched",
        help="simulation engine for every trial",
    )
    crn_sweep.add_argument(
        "--mode", choices=list(CRN_MODES), default="uniform",
        help="lowering mode (thinned needs --engine count or batched)",
    )
    crn_sweep.add_argument("--seed", type=int, default=0, help="sweep-level base seed")
    crn_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, same results either way)",
    )
    crn_sweep.add_argument(
        "--cache-dir", default="",
        help="directory of the JSON-lines result cache (empty: no cache)",
    )
    crn_sweep.add_argument(
        "--resume", action="store_true",
        help="replay trials already in the cache instead of recomputing them",
    )
    crn_sweep.add_argument(
        "--chem-time", type=float, default=None,
        help="per-trial chemical-time budget (default: the workload's)",
    )
    crn_sweep.add_argument(
        "--check-interval", type=int, default=None,
        help="interactions between predicate checks (default: engine-chosen)",
    )
    crn_sweep.add_argument(
        "--batch-size", type=int, default=None,
        help="batched engine only: interactions per batch (default ~sqrt(n))",
    )
    crn_sweep.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="array backend for every trial (default: $REPRO_BACKEND or "
        "numpy; participates in the trial cache keys)",
    )
    crn_sweep.add_argument(
        "--leap-eps", type=float, default=None,
        help="multiscale engine only: tau-leap relative-propensity "
        "tolerance (participates in the trial cache keys)",
    )
    crn_sweep.add_argument(
        "--regime-thresholds", type=_regime_thresholds_arg, default=None,
        metavar="CRITICAL,ODE",
        help="multiscale engine only: exact-SSA and ODE count thresholds "
        "(participates in the trial cache keys)",
    )
    _add_store_arguments(crn_sweep)
    _add_telemetry_arguments(crn_sweep)
    crn_sweep.set_defaults(handler=_cmd_crn_sweep)

    store = subparsers.add_parser(
        "store",
        help="shared result stores: serve one over HTTP, inspect any",
        description=(
            "Distributed-sweep result stores.  `serve` fronts a WAL-mode "
            "SQLite store with a small HTTP daemon so sweep drivers on many "
            "hosts share one store (--store http://HOST:PORT); `status` "
            "summarises completion, leases and throughput of any store URL."
        ),
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_serve = store_sub.add_parser(
        "serve", help="serve a SQLite-backed result store over HTTP"
    )
    store_serve.add_argument(
        "--db", required=True, help="path of the backing SQLite database"
    )
    store_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default loopback; use 0.0.0.0 for other hosts)",
    )
    store_serve.add_argument(
        "--port", type=int, default=8512, help="bind port (0 picks a free one)"
    )
    store_serve.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="server-side default lease duration in seconds",
    )
    store_serve.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    store_serve.set_defaults(handler=_cmd_store_serve)
    store_status = store_sub.add_parser(
        "status",
        help="completed/leased/stale counts and per-workload throughput",
    )
    store_status.add_argument(
        "--store", required=True,
        help="store URL: jsonl:DIR, sqlite:PATH or http://HOST:PORT",
    )
    store_status.add_argument(
        "--watch", action="store_true",
        help="poll the store and render live distributed-sweep health: "
        "per-driver throughput (attributed by lease hand-off), lease "
        "churn, and stale-lease alerts",
    )
    store_status.add_argument(
        "--interval", type=float, default=2.0,
        help="--watch only: seconds between polls (default 2)",
    )
    store_status.add_argument(
        "--iterations", type=int, default=None,
        help="--watch only: stop after this many polls (default: forever)",
    )
    store_status.set_defaults(handler=_cmd_store_status)

    trace = subparsers.add_parser(
        "trace",
        help="export/validate Chrome trace-event files from telemetry spools",
        description=(
            "Span-level traces: sweeps run with --trace-spool DIR write "
            "per-process trace-event JSONL spools; `export` merges a spool "
            "into one Chrome trace-event JSON file loadable in Perfetto "
            "(https://ui.perfetto.dev) or chrome://tracing, and `validate` "
            "checks any trace file against the event schema."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export", help="merge a spool directory into one Perfetto-loadable file"
    )
    trace_export.add_argument(
        "--spool", required=True,
        help="spool directory written by a --trace-spool sweep",
    )
    trace_export.add_argument(
        "--out", required=True, help="output trace JSON path"
    )
    trace_export.set_defaults(handler=_cmd_trace_export)
    trace_validate = trace_sub.add_parser(
        "validate", help="schema-check a Chrome trace-event JSON file"
    )
    trace_validate.add_argument("trace", help="trace JSON file to validate")
    trace_validate.set_defaults(handler=_cmd_trace_validate)

    simulate = subparsers.add_parser(
        "simulate", help="run a finite-state protocol on a selectable engine"
    )
    simulate.add_argument(
        "--protocol",
        choices=sorted(WORKLOADS),
        default="epidemic",
        help="which finite-state workload to run",
    )
    simulate.add_argument(
        "--n", type=int, default=None,
        help="population size (default: 100000; 2000 for leader election, "
        "which needs Theta(n^2) interactions)",
    )
    simulate.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default="batched",
        help="simulation engine (agent: exact reference; count: per-interaction "
        "counts; batched: multinomial batches, fastest at large n; vector: "
        "numpy matching rounds, exact per-round convergence measurement)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--max-time", type=float, default=None,
        help="parallel-time budget before the run counts as non-converged "
        "(default: 200 for polylog-time protocols, 4n for leader election)",
    )
    simulate.add_argument(
        "--batch-size", type=int, default=None,
        help="batched engine only: interactions per batch (default ~sqrt(n))",
    )
    simulate.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="array backend for the hot-loop kernels (default: "
        "$REPRO_BACKEND or numpy; unavailable backends fall back to numpy "
        "with a warning — see `repro engines`)",
    )
    simulate.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default=None,
        help="interaction scheduler (default: the engine's own — sequential "
        "for agent/count/batched, matching for vector; `repro engines` "
        "prints the compatibility matrix)",
    )
    simulate.add_argument(
        "--scheduler-opt", action="append", default=None, metavar="KEY=VALUE",
        help="scheduler option, repeatable (e.g. --scheduler two-block "
        "--scheduler-opt intra=0.95)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    profile = subparsers.add_parser(
        "profile",
        help="cProfile a workload run with a per-kernel timing breakdown",
        description=(
            "Run one finite-state workload under cProfile on any engine x "
            "backend combination and print the run counters (throughput in "
            "interactions/s), the top functions by cumulative time, and a "
            "breakdown restricted to the repro.backend / repro.engine kernel "
            "frames — the profile-guided view behind the array-backend seam "
            "(DESIGN.md, Array backends)."
        ),
    )
    profile.add_argument(
        "--protocol",
        choices=sorted(WORKLOADS),
        default="epidemic",
        help="which finite-state workload to profile",
    )
    profile.add_argument(
        "--n", type=int, default=None,
        help="population size (default: the workload's)",
    )
    profile.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="batched",
        help="simulation engine to profile",
    )
    profile.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="array backend for the hot-loop kernels (default: "
        "$REPRO_BACKEND or numpy)",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--interactions", type=int, default=None,
        help="profile exactly this many interactions instead of a "
        "run-to-convergence (recommended for stable timings)",
    )
    profile.add_argument(
        "--max-time", type=float, default=None,
        help="parallel-time budget of a run-to-convergence profile "
        "(default: the workload's budget; ignored with --interactions)",
    )
    profile.add_argument(
        "--batch-size", type=int, default=None,
        help="batched engine only: interactions per batch (default ~sqrt(n))",
    )
    profile.add_argument(
        "--scheduler", choices=list(SCHEDULER_NAMES), default=None,
        help="interaction scheduler (default: the engine's own)",
    )
    profile.add_argument(
        "--scheduler-opt", action="append", default=None, metavar="KEY=VALUE",
        help="scheduler option, repeatable",
    )
    profile.add_argument(
        "--top", type=int, default=12,
        help="rows per profile table (default: 12)",
    )
    profile.set_defaults(handler=_cmd_profile)

    sweep = subparsers.add_parser(
        "sweep",
        help="multi-size, multi-seed sweep with parallel workers and a resumable cache",
        description=(
            "Sweep a finite-state workload over population sizes and seeds "
            "through the parallel sweep driver.  Trials are independent and "
            "deterministically seeded, so --workers N produces record-for-"
            "record identical results to --workers 1.  With --cache-dir, "
            "finished trials are appended to a JSON-lines cache keyed by a "
            "hash of each trial spec; --resume replays cached trials so an "
            "interrupted or repeated sweep executes only the missing ones."
        ),
    )
    sweep.add_argument(
        "--protocol",
        choices=sorted(WORKLOADS) + sorted(VECTOR_WORKLOADS),
        default="epidemic",
        help="which workload to sweep (finite-state workloads run on any "
        "engine; figure2 and leader-terminating require --engine vector)",
    )
    sweep.add_argument(
        "--sizes", default="1000,10000,100000",
        help="comma-separated population sizes",
    )
    sweep.add_argument("--runs", type=int, default=3, help="runs (seeds) per size")
    sweep.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default="batched",
        help="simulation engine for every trial",
    )
    sweep.add_argument("--seed", type=int, default=0, help="sweep-level base seed")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, same results either way)",
    )
    sweep.add_argument(
        "--cache-dir", default="",
        help="directory of the JSON-lines result cache (empty: no cache)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="replay trials already in the cache instead of recomputing them "
        "(without this flag an existing cache file is cleared first)",
    )
    sweep.add_argument(
        "--max-time", type=float, default=None,
        help="per-trial parallel-time budget (default: the workload's budget, "
        "e.g. 200 for polylog-time protocols, 4n for leader election)",
    )
    sweep.add_argument(
        "--check-interval", type=int, default=None,
        help="interactions between predicate checks (default: engine-chosen)",
    )
    sweep.add_argument(
        "--batch-size", type=int, default=None,
        help="batched engine only: interactions per batch (default ~sqrt(n))",
    )
    sweep.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="array backend for every trial (default: $REPRO_BACKEND or "
        "numpy; participates in the trial cache keys)",
    )
    sweep.add_argument(
        "--fast", action="store_true",
        help="vector workloads only: use scaled-down protocol constants",
    )
    sweep.add_argument(
        "--phase-count", type=int, default=None,
        help="leader-terminating workload only: phases of the leader-driven "
        "clock (paper: 289; small values terminate sooner)",
    )
    sweep.add_argument(
        "--scheduler",
        choices=list(SCHEDULER_NAMES),
        default=None,
        help="interaction scheduler for every trial (default: the engine's "
        "own; participates in the trial cache keys, so cached uniform "
        "results are never replayed for a non-uniform sweep)",
    )
    sweep.add_argument(
        "--scheduler-opt", action="append", default=None, metavar="KEY=VALUE",
        help="scheduler option, repeatable (e.g. --scheduler weighted "
        "--scheduler-opt lazy_rate=0.25)",
    )
    _add_store_arguments(sweep)
    _add_telemetry_arguments(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
