"""Native C backend: the batched hot loop compiled with cffi + the system cc.

Where the numba backend needs an extra wheel, this backend needs only what
most dev boxes and CI images already carry: ``cffi`` and a C compiler.  The
batched draw→apply loop is a single C function — xoshiro256++ RNG,
inverse-CDF pair sampling over the cumulative ``S^2`` weight table,
consumption guard, outcome splitting and the exact sequential fallback —
invoked once per ``run_interactions`` call, which removes *all* per-batch
Python dispatch (~3–5 ns per interaction on commodity x86).

The extension module is compiled on first use and cached on disk keyed by a
hash of the C source (``REPRO_NATIVE_CACHE`` overrides the cache directory;
the default lives under the platform user-cache directory).  Compilation
failures, a missing compiler or a missing cffi simply mark the backend
unavailable — :func:`repro.backend.resolve_backend` then warns and falls
back to numpy, so nothing ever hard-fails.

RNG-stream contract: the kernel's xoshiro stream is seeded once per kernel
from the engine's generator, so runs are reproducible per seed but
distribution-identical (not bitwise) to the numpy backend — same contract
as the numba backend, pinned by the parity suite in ``tests/backend``.

The vector-engine kernels are *not* overridden: this backend accelerates
the batched engine and inherits the reference implementations for the rest
(the seam's whole point — partial backends compose with the fallback).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile
from typing import TYPE_CHECKING

import numpy as np

from repro.backend import ArrayBackend, register_backend
from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.compiled import CompiledTransitionTable

__all__ = ["ENV_NATIVE_CACHE", "NativeBackend", "NativeBatchedKernel"]

#: Environment variable overriding where compiled kernels are cached.
ENV_NATIVE_CACHE = "REPRO_NATIVE_CACHE"

_CDEF = """
long long repro_batched_advance(
    long long *counts, long long size, long long kmax,
    const long long *receiver_out, const long long *sender_out,
    const double *probability, const long long *outcome_count,
    const double *null_probability, const double *rates, int uniform,
    long long population, long long total_interactions, long long batch_size,
    long long small_threshold, unsigned long long *rng_state,
    unsigned char *seen, long long *stats);
"""

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* xoshiro256++ (Blackman & Vigna, public domain reference implementation
 * structure): a small, fast generator with 2^256-1 period; ample for
 * simulation draws. */
static inline uint64_t rotl64(const uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

static inline uint64_t xo_next(uint64_t *s) {
    const uint64_t result = rotl64(s[0] + s[3], 23) + s[0];
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl64(s[3], 45);
    return result;
}

/* Uniform double in [0, 1) with 53 random bits. */
static inline double xo_double(uint64_t *s) {
    return (double)(xo_next(s) >> 11) * (1.0 / 9007199254740992.0);
}

/* One exact interaction loop: `batch` sequential steps on the counts.
 * Returns 0, or 2 for the degenerate weighted configuration. */
static long long exact_interactions(
    long long *counts, long long size, long long kmax,
    const long long *receiver_out, const long long *sender_out,
    const double *probability, const long long *outcome_count,
    const double *null_probability, const double *rates, int uniform,
    long long population, long long batch, uint64_t *rng,
    unsigned char *seen)
{
    for (long long step = 0; step < batch; step++) {
        long long receiver = size - 1, sender = size - 1;
        if (uniform) {
            long long threshold = (long long)(xo_double(rng) * (double)population);
            if (threshold >= population) threshold = population - 1;
            long long co_threshold =
                (long long)(xo_double(rng) * (double)(population - 1));
            if (co_threshold >= population - 1) co_threshold = population - 2;
            long long cum = 0, receiver_cum = population;
            for (long long i = 0; i < size; i++) {
                cum += counts[i];
                if (threshold < cum) { receiver = i; receiver_cum = cum; break; }
            }
            if (co_threshold >= receiver_cum - 1) co_threshold += 1;
            cum = 0;
            for (long long j = 0; j < size; j++) {
                cum += counts[j];
                if (co_threshold < cum) { sender = j; break; }
            }
        } else {
            double total = 0.0;
            long long positive_agents = 0;
            for (long long i = 0; i < size; i++) {
                total += rates[i] * (double)counts[i];
                if (rates[i] > 0.0) positive_agents += counts[i];
            }
            if (total <= 0.0 || positive_agents < 2) return 2;
            for (;;) {
                double u = xo_double(rng) * total, mass = 0.0;
                receiver = size - 1;
                for (long long i = 0; i < size; i++) {
                    mass += rates[i] * (double)counts[i];
                    if (u < mass) { receiver = i; break; }
                }
                u = xo_double(rng) * total; mass = 0.0;
                sender = size - 1;
                for (long long j = 0; j < size; j++) {
                    mass += rates[j] * (double)counts[j];
                    if (u < mass) { sender = j; break; }
                }
                if (receiver != sender) break;
                /* Same-state draw: same agent with probability 1/c, else a
                 * valid distinct ordered pair. */
                if (counts[receiver] >= 2 &&
                    xo_double(rng) * (double)counts[receiver] >= 1.0) break;
            }
        }
        long long pair_outcomes = outcome_count[receiver * size + sender];
        if (pair_outcomes == 0) continue;
        const double *pair_probability =
            probability + (receiver * size + sender) * kmax;
        long long chosen = 0;
        int fired = 1;
        if (pair_outcomes > 1 ||
            null_probability[receiver * size + sender] > 0.0) {
            double u = xo_double(rng), mass = 0.0;
            fired = 0;
            for (long long k = 0; k < pair_outcomes; k++) {
                mass += pair_probability[k];
                if (u < mass) { chosen = k; fired = 1; break; }
            }
        }
        if (!fired) continue;  /* residual mass = null transition */
        long long r_out = receiver_out[(receiver * size + sender) * kmax + chosen];
        long long s_out = sender_out[(receiver * size + sender) * kmax + chosen];
        counts[receiver] -= 1;
        counts[sender] -= 1;
        counts[r_out] += 1;
        counts[s_out] += 1;
        seen[r_out] = 1;
        seen[s_out] = 1;
    }
    return 0;
}

/* Whether some reactive pair exists among present states while no state
 * touching one reaches the small-count threshold. */
static int counts_small(
    const long long *counts, long long size,
    const long long *outcome_count, long long small_threshold)
{
    int any_reactive = 0;
    for (long long i = 0; i < size; i++) {
        if (counts[i] <= 0) continue;
        for (long long j = 0; j < size; j++) {
            if (counts[j] <= 0 || outcome_count[i * size + j] == 0) continue;
            any_reactive = 1;
            if (counts[i] >= small_threshold || counts[j] >= small_threshold)
                return 0;
        }
    }
    return any_reactive;
}

long long repro_batched_advance(
    long long *counts, long long size, long long kmax,
    const long long *receiver_out, const long long *sender_out,
    const double *probability, const long long *outcome_count,
    const double *null_probability, const double *rates, int uniform,
    long long population, long long total_interactions, long long batch_size,
    long long small_threshold, unsigned long long *rng_state,
    unsigned char *seen, long long *stats)
{
    uint64_t *rng = (uint64_t *)rng_state;
    long long pairs = size * size;
    double *cumulative = (double *)malloc((size_t)pairs * sizeof(double));
    long long *pair_counts = (long long *)malloc((size_t)pairs * sizeof(long long));
    long long *per_state = (long long *)malloc((size_t)size * 2 * sizeof(long long));
    if (!cumulative || !pair_counts || !per_state) {
        free(cumulative); free(pair_counts); free(per_state);
        return 3;  /* allocation failure */
    }
    long long *consumed = per_state;
    long long *delta = per_state + size;
    long long code = 0;
    long long done = 0;
    while (done < total_interactions) {
        long long batch = total_interactions - done;
        if (batch > batch_size) batch = batch_size;
        if (small_threshold > 0 &&
            counts_small(counts, size, outcome_count, small_threshold)) {
            code = exact_interactions(counts, size, kmax, receiver_out,
                sender_out, probability, outcome_count, null_probability,
                rates, uniform, population, batch, rng, seen);
            if (code != 0) goto out;
            stats[1] += 1;
            done += batch;
            continue;
        }
        /* Frozen pair weights at the batch's starting counts, cumulated for
         * inverse-CDF sampling. */
        double mass = 0.0;
        for (long long i = 0; i < size; i++) {
            double scaled_i = uniform ? (double)counts[i]
                                      : rates[i] * (double)counts[i];
            for (long long j = 0; j < size; j++) {
                double weight;
                if (i == j) {
                    weight = uniform
                        ? (double)counts[i] * ((double)counts[i] - 1.0)
                        : scaled_i * rates[i] * ((double)counts[i] - 1.0);
                } else {
                    double scaled_j = uniform ? (double)counts[j]
                                              : rates[j] * (double)counts[j];
                    weight = scaled_i * scaled_j;
                }
                mass += weight;
                cumulative[i * size + j] = mass;
            }
        }
        if (mass <= 0.0) { code = 1; goto out; }
        /* Tally the batch: iid categorical pair draws by binary search. */
        for (long long p = 0; p < pairs; p++) pair_counts[p] = 0;
        for (long long step = 0; step < batch; step++) {
            double u = xo_double(rng) * mass;
            long long lo = 0, hi = pairs - 1;
            while (lo < hi) {
                long long mid = (lo + hi) / 2;
                if (u < cumulative[mid]) hi = mid; else lo = mid + 1;
            }
            pair_counts[lo] += 1;
        }
        /* Consumption guard over reactive pairs only. */
        for (long long i = 0; i < size; i++) consumed[i] = 0;
        for (long long i = 0; i < size; i++)
            for (long long j = 0; j < size; j++) {
                if (outcome_count[i * size + j] == 0) continue;
                long long occurrences = pair_counts[i * size + j];
                consumed[i] += occurrences;
                consumed[j] += occurrences;
            }
        int guard_tripped = 0;
        for (long long i = 0; i < size; i++)
            if (consumed[i] > counts[i]) { guard_tripped = 1; break; }
        if (guard_tripped) {
            code = exact_interactions(counts, size, kmax, receiver_out,
                sender_out, probability, outcome_count, null_probability,
                rates, uniform, population, batch, rng, seen);
            if (code != 0) goto out;
            stats[1] += 1;
            done += batch;
            continue;
        }
        /* Split each reactive pair's occurrences among its outcomes and
         * apply all deltas at once. */
        for (long long i = 0; i < size; i++) delta[i] = 0;
        for (long long i = 0; i < size; i++)
            for (long long j = 0; j < size; j++) {
                long long pair_outcomes = outcome_count[i * size + j];
                if (pair_outcomes == 0) continue;
                long long occurrences = pair_counts[i * size + j];
                if (occurrences == 0) continue;
                const double *pair_probability =
                    probability + (i * size + j) * kmax;
                if (pair_outcomes == 1 &&
                    null_probability[i * size + j] <= 0.0) {
                    /* Certain single outcome: no draws, apply in bulk. */
                    long long r_out = receiver_out[(i * size + j) * kmax];
                    long long s_out = sender_out[(i * size + j) * kmax];
                    delta[i] -= occurrences;
                    delta[j] -= occurrences;
                    delta[r_out] += occurrences;
                    delta[s_out] += occurrences;
                    seen[r_out] = 1;
                    seen[s_out] = 1;
                    continue;
                }
                for (long long e = 0; e < occurrences; e++) {
                    long long chosen = 0;
                    int fired = 0;
                    double u = xo_double(rng), outcome_mass = 0.0;
                    for (long long k = 0; k < pair_outcomes; k++) {
                        outcome_mass += pair_probability[k];
                        if (u < outcome_mass) { chosen = k; fired = 1; break; }
                    }
                    if (!fired) continue;
                    long long r_out =
                        receiver_out[(i * size + j) * kmax + chosen];
                    long long s_out =
                        sender_out[(i * size + j) * kmax + chosen];
                    delta[i] -= 1;
                    delta[j] -= 1;
                    delta[r_out] += 1;
                    delta[s_out] += 1;
                    seen[r_out] = 1;
                    seen[s_out] = 1;
                }
            }
        for (long long i = 0; i < size; i++) counts[i] += delta[i];
        stats[0] += 1;
        done += batch;
    }
out:
    free(cumulative);
    free(pair_counts);
    free(per_state);
    return code;
}
"""

# Compilation state: None = not yet attempted, else (lib, ffi) or the cached
# failure reason string.
_COMPILED: "tuple | None" = None
_FAILURE: str | None = None


def _cache_dir() -> str:
    override = os.environ.get(ENV_NATIVE_CACHE)
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    base = os.path.join(tempfile.gettempdir(), "repro-native-cache")
    os.makedirs(base, exist_ok=True)
    return base


def _module_name() -> str:
    digest = hashlib.sha256((_CDEF + _SOURCE).encode()).hexdigest()[:12]
    return f"_repro_native_{digest}"


def _load_compiled():
    """Compile (or load the cached build of) the kernel module.

    Returns ``(lib, ffi)``; raises on any failure (missing cffi, missing
    compiler, broken toolchain) — the caller converts that into backend
    unavailability.
    """
    global _COMPILED, _FAILURE
    if _COMPILED is not None:
        return _COMPILED
    if _FAILURE is not None:
        raise RuntimeError(_FAILURE)
    try:
        from cffi import FFI

        cache = _cache_dir()
        name = _module_name()
        module = _find_built_module(cache, name)
        if module is None:
            ffi_builder = FFI()
            ffi_builder.cdef(_CDEF)
            ffi_builder.set_source(
                name, _SOURCE, extra_compile_args=["-O3"]
            )
            ffi_builder.compile(tmpdir=cache, verbose=False)
            module = _find_built_module(cache, name)
            if module is None:
                raise RuntimeError("compiled extension not found after build")
        _COMPILED = (module.lib, module.ffi)
        return _COMPILED
    except Exception as error:  # noqa: BLE001 - any failure = unavailable
        _FAILURE = f"{type(error).__name__}: {error}"
        raise RuntimeError(_FAILURE) from error


def _find_built_module(cache: str, name: str):
    """Import the built extension from the cache directory, if present."""
    for entry in sorted(os.listdir(cache)):
        if entry.startswith(name) and entry.endswith((".so", ".pyd", ".dylib")):
            spec = importlib.util.spec_from_file_location(
                name, os.path.join(cache, entry)
            )
            if spec is None or spec.loader is None:
                return None
            module = importlib.util.module_from_spec(spec)
            sys.modules.setdefault(name, module)
            spec.loader.exec_module(module)
            return module
    return None


class NativeBatchedKernel:
    """Batched-engine kernel dispatching into the compiled C routine."""

    jit = True

    def __init__(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
        rng: np.random.Generator,
    ) -> None:
        self._lib, self._ffi = _load_compiled()
        self.table = table
        self.population_size = population_size
        self.small_count_threshold = small_count_threshold
        self.seen = np.zeros(table.num_states, dtype=bool)
        self._seen_bytes = np.zeros(table.num_states, dtype=np.uint8)
        self._stats = np.zeros(2, dtype=np.int64)
        self._uniform = state_rates is None
        self._rates = (
            np.ones(table.num_states, dtype=np.float64)
            if state_rates is None
            else np.ascontiguousarray(state_rates, dtype=np.float64)
        )
        # xoshiro state seeded from the engine generator; >= 1 keeps the
        # state away from the all-zero fixed point.
        self._rng_state = rng.integers(
            1, 2**63, size=4, dtype=np.uint64
        )

    def _pointer(self, ctype: str, array: np.ndarray):
        return self._ffi.cast(ctype, array.ctypes.data)

    def advance(
        self,
        counts: np.ndarray,
        max_interactions: int,
        batch_size: int,
        rng: np.random.Generator,
    ) -> tuple[int, int, int]:
        table = self.table
        before_batched = int(self._stats[0])
        before_fallback = int(self._stats[1])
        code = self._lib.repro_batched_advance(
            self._pointer("long long *", counts),
            table.num_states,
            table.max_outcomes,
            self._pointer("const long long *", table.outcome_receiver),
            self._pointer("const long long *", table.outcome_sender),
            self._pointer("const double *", table.outcome_probability),
            self._pointer("const long long *", table.outcome_count),
            self._pointer("const double *", table.null_probability),
            self._pointer("const double *", self._rates),
            0 if not self._uniform else 1,
            self.population_size,
            max_interactions,
            batch_size,
            self.small_count_threshold,
            self._pointer("unsigned long long *", self._rng_state),
            self._pointer("unsigned char *", self._seen_bytes),
            self._pointer("long long *", self._stats),
        )
        if code == 1:
            raise SimulationError(
                "scheduler assigns zero total weight to the current configuration"
            )
        if code == 2:
            raise SimulationError(
                "state-weighted scheduler: fewer than two agents have a "
                "positive rate; no ordered pair can be selected"
            )
        if code != 0:
            raise SimulationError(f"native batched kernel failed (code {code})")
        np.logical_or(self.seen, self._seen_bytes.view(bool), out=self.seen)
        return (
            max_interactions,
            int(self._stats[0]) - before_batched,
            int(self._stats[1]) - before_fallback,
        )


@register_backend
class NativeBackend(ArrayBackend):
    """C backend: available when cffi plus a working C compiler are found."""

    name = "native"
    jit = True

    @classmethod
    def available(cls) -> bool:
        try:
            _load_compiled()
        except Exception:  # noqa: BLE001 - unavailability, not an error
            return False
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        if cls.available():
            return None
        return _FAILURE or "cffi or a C compiler is missing"

    def batched_kernel(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
        rng: np.random.Generator,
    ) -> NativeBatchedKernel:
        return NativeBatchedKernel(
            table, state_rates, population_size, small_count_threshold, rng
        )

    def describe(self) -> str:
        if self.available():
            return "cffi-compiled C kernels (distribution-identical to numpy)"
        return f"cffi-compiled C kernels (unavailable: {_FAILURE or 'no toolchain'})"
