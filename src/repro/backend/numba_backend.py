"""Numba JIT backend: the hot loops compiled to native code (optional dep).

The kernels here are plain nopython-compatible functions decorated with
:func:`_maybe_jit`.  With `numba <https://numba.pydata.org>`_ installed
(``pip install -e .[jit]``) they compile to fused native loops — one call
executes an entire ``run_interactions`` worth of batches with zero per-batch
Python dispatch.  Without numba the same functions run interpreted: slow,
but byte-for-byte the same logic, which is how the test suite exercises this
backend's correctness on numpy-only installs.

RNG-stream contract
-------------------
The kernels draw from numba's internal per-thread PRNG via the
``np.random.*`` module functions (the only RNG reachable from nopython
code; interpreted runs hit numpy's legacy global ``RandomState``).  Each
kernel seeds that stream once at construction from the *engine's* generator,
so seeded runs remain reproducible per seed — but the draws are **not** the
engine generator's, so trajectories match the numpy backend in distribution,
not bitwise.  Two kernels constructed in one process share the underlying
global stream; per-seed reproducibility holds for one engine driven at a
time (the sweep harness runs one engine per process/task).

The batched kernel replaces the reference backend's vectorised
draw-tally-apply with a single loop: frozen cumulative pair weights, one
inverse-CDF binary search per interaction, the consumption guard over the
tally, per-pair outcome draws, and the exact sequential fallback — all
inside one njit function.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backend import ArrayBackend, register_backend
from repro.backend.numpy_backend import NumpyFiniteRoundKernel, NumpyTauLeapKernel
from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.compiled import CompiledTransitionTable

__all__ = [
    "NUMBA_AVAILABLE",
    "NumbaBackend",
    "NumbaBatchedKernel",
    "NumbaTauLeapKernel",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:
    _numba = None
    NUMBA_AVAILABLE = False


def _maybe_jit(function):
    """``numba.njit`` when numba is importable, the bare function otherwise.

    Keeping the fallback an identity decorator means the kernels below are
    always importable and runnable — interpreted execution is the numba-less
    test path, compilation is the production path.
    """
    if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
        return _numba.njit(cache=True)(function)
    return function


@_maybe_jit
def _seed_stream(seed: int) -> None:
    np.random.seed(seed)


@_maybe_jit
def _counts_small(counts, outcome_count, small_threshold):
    """Small-count fallback test: some reactive pair exists among present
    states, and no state touching one has count >= the threshold."""
    size = counts.shape[0]
    any_reactive = False
    for i in range(size):
        if counts[i] <= 0:
            continue
        for j in range(size):
            if counts[j] <= 0 or outcome_count[i, j] == 0:
                continue
            any_reactive = True
            if counts[i] >= small_threshold or counts[j] >= small_threshold:
                return False
    return any_reactive


@_maybe_jit
def _draw_rate_weighted(counts, rates, total):
    """One rate-weighted state draw by linear inverse CDF."""
    u = np.random.random() * total
    size = counts.shape[0]
    mass = 0.0
    for i in range(size):
        mass += rates[i] * counts[i]
        if u < mass:
            return i
    return size - 1


@_maybe_jit
def _exact_interactions(
    counts,
    receiver_out,
    sender_out,
    probability,
    outcome_count,
    null_probability,
    rates,
    uniform,
    population,
    batch,
    seen,
):
    """Exact per-interaction stepping: the fallback path, in kernel space.

    Distribution-identical to the reference backend's exact fallback:
    uniform ordered pairs via receiver threshold + shifted co-threshold, or
    two rate-weighted draws with same-agent rejection under a state-weighted
    policy.  Returns 0, or 2 for the degenerate weighted configuration.
    """
    size = counts.shape[0]
    for _ in range(batch):
        if uniform:
            threshold = int(np.random.random() * population)
            if threshold >= population:
                threshold = population - 1
            co_threshold = int(np.random.random() * (population - 1))
            if co_threshold >= population - 1:
                co_threshold = population - 2
            receiver = size - 1
            receiver_cum = population
            cum = 0
            for i in range(size):
                cum += counts[i]
                if threshold < cum:
                    receiver = i
                    receiver_cum = cum
                    break
            if co_threshold >= receiver_cum - 1:
                co_threshold += 1
            sender = size - 1
            cum = 0
            for j in range(size):
                cum += counts[j]
                if co_threshold < cum:
                    sender = j
                    break
        else:
            total = 0.0
            positive_agents = 0
            for i in range(size):
                total += rates[i] * counts[i]
                if rates[i] > 0.0:
                    positive_agents += counts[i]
            if total <= 0.0 or positive_agents < 2:
                return 2
            receiver = 0
            sender = 0
            while True:
                receiver = _draw_rate_weighted(counts, rates, total)
                sender = _draw_rate_weighted(counts, rates, total)
                if receiver != sender:
                    break
                if counts[receiver] >= 2 and (
                    np.random.random() * counts[receiver] >= 1.0
                ):
                    break
        pair_outcomes = outcome_count[receiver, sender]
        if pair_outcomes == 0:
            continue
        randomized = pair_outcomes > 1 or null_probability[receiver, sender] > 0.0
        chosen = 0
        fired = True
        if randomized:
            u = np.random.random()
            mass = 0.0
            fired = False
            for k in range(pair_outcomes):
                mass += probability[receiver, sender, k]
                if u < mass:
                    chosen = k
                    fired = True
                    break
        if not fired:
            continue  # residual mass = null transition
        r_out = receiver_out[receiver, sender, chosen]
        s_out = sender_out[receiver, sender, chosen]
        counts[receiver] -= 1
        counts[sender] -= 1
        counts[r_out] += 1
        counts[s_out] += 1
        seen[r_out] = True
        seen[s_out] = True
    return 0


@_maybe_jit
def _batched_advance(
    counts,
    receiver_out,
    sender_out,
    probability,
    outcome_count,
    null_probability,
    rates,
    uniform,
    population,
    total_interactions,
    batch_size,
    small_threshold,
    seen,
    stats,
):
    """Run ``total_interactions`` interactions of the batched process.

    The whole engine loop is fused: per batch, frozen cumulative pair
    weights over the S^2 ordered pairs, one inverse-CDF binary search per
    interaction tallied into pair counts, the consumption guard, per-pair
    outcome splitting, and the delta application — with the exact
    sequential fallback for small-count or guard-tripped batches.  Returns
    0 on success, 1 for a zero-total-weight configuration, 2 for the
    degenerate weighted-exact configuration; ``stats`` accumulates
    ``[batched_batches, fallback_batches]``.
    """
    size = counts.shape[0]
    pairs = size * size
    cumulative = np.zeros(pairs, dtype=np.float64)
    pair_counts = np.zeros(pairs, dtype=np.int64)
    consumed = np.zeros(size, dtype=np.int64)
    delta = np.zeros(size, dtype=np.int64)
    done = 0
    while done < total_interactions:
        batch = total_interactions - done
        if batch > batch_size:
            batch = batch_size
        if small_threshold > 0 and _counts_small(
            counts, outcome_count, small_threshold
        ):
            code = _exact_interactions(
                counts, receiver_out, sender_out, probability, outcome_count,
                null_probability, rates, uniform, population, batch, seen,
            )
            if code != 0:
                return code
            stats[1] += 1
            done += batch
            continue
        # Frozen pair weights at the batch's starting counts, cumulated for
        # inverse-CDF sampling.
        mass = 0.0
        for i in range(size):
            scaled_i = counts[i] if uniform else rates[i] * counts[i]
            for j in range(size):
                if i == j:
                    if uniform:
                        weight = counts[i] * (counts[i] - 1.0)
                    else:
                        weight = scaled_i * rates[i] * (counts[i] - 1.0)
                else:
                    scaled_j = counts[j] if uniform else rates[j] * counts[j]
                    weight = scaled_i * scaled_j
                mass += weight
                cumulative[i * size + j] = mass
        if mass <= 0.0:
            return 1
        # Tally the batch: iid categorical pair draws by binary search.
        for p in range(pairs):
            pair_counts[p] = 0
        for _ in range(batch):
            u = np.random.random() * mass
            lo = 0
            hi = pairs - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if u < cumulative[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            pair_counts[lo] += 1
        # Consumption guard over reactive pairs only.
        for i in range(size):
            consumed[i] = 0
        for i in range(size):
            for j in range(size):
                if outcome_count[i, j] == 0:
                    continue
                occurrences = pair_counts[i * size + j]
                consumed[i] += occurrences
                consumed[j] += occurrences
        guard_tripped = False
        for i in range(size):
            if consumed[i] > counts[i]:
                guard_tripped = True
                break
        if guard_tripped:
            code = _exact_interactions(
                counts, receiver_out, sender_out, probability, outcome_count,
                null_probability, rates, uniform, population, batch, seen,
            )
            if code != 0:
                return code
            stats[1] += 1
            done += batch
            continue
        # Split each reactive pair's occurrences among its outcomes and
        # apply all deltas at once.
        for i in range(size):
            delta[i] = 0
        for i in range(size):
            for j in range(size):
                pair_outcomes = outcome_count[i, j]
                if pair_outcomes == 0:
                    continue
                occurrences = pair_counts[i * size + j]
                if occurrences == 0:
                    continue
                if pair_outcomes == 1 and null_probability[i, j] <= 0.0:
                    # Certain single outcome: no draws, apply in bulk.
                    r_out = receiver_out[i, j, 0]
                    s_out = sender_out[i, j, 0]
                    delta[i] -= occurrences
                    delta[j] -= occurrences
                    delta[r_out] += occurrences
                    delta[s_out] += occurrences
                    seen[r_out] = True
                    seen[s_out] = True
                    continue
                for _ in range(occurrences):
                    chosen = 0
                    fired = False
                    u = np.random.random()
                    outcome_mass = 0.0
                    for k in range(pair_outcomes):
                        outcome_mass += probability[i, j, k]
                        if u < outcome_mass:
                            chosen = k
                            fired = True
                            break
                    if not fired:
                        continue
                    r_out = receiver_out[i, j, chosen]
                    s_out = sender_out[i, j, chosen]
                    delta[i] -= 1
                    delta[j] -= 1
                    delta[r_out] += 1
                    delta[s_out] += 1
                    seen[r_out] = True
                    seen[s_out] = True
        for i in range(size):
            counts[i] += delta[i]
        stats[0] += 1
        done += batch
    return 0


@_maybe_jit
def _apply_round(
    state, rec, sen, receiver_out, sender_out, probability, outcome_count,
    null_probability,
):
    """One fused matching round: per-pair gather, outcome draw, scatter."""
    for position in range(rec.shape[0]):
        receiver = rec[position]
        sender = sen[position]
        i = state[receiver]
        j = state[sender]
        pair_outcomes = outcome_count[i, j]
        if pair_outcomes == 0:
            continue
        chosen = 0
        fired = True
        if pair_outcomes > 1 or null_probability[i, j] > 0.0:
            u = np.random.random()
            mass = 0.0
            fired = False
            for k in range(pair_outcomes):
                mass += probability[i, j, k]
                if u < mass:
                    chosen = k
                    fired = True
                    break
        if not fired:
            continue
        state[receiver] = receiver_out[i, j, chosen]
        state[sender] = sender_out[i, j, chosen]


def _fresh_seed(rng: np.random.Generator) -> int:
    """A seed for the kernel stream drawn from the engine's generator."""
    return int(rng.integers(0, 2**31 - 1))


@_maybe_jit
def _tau_leap_step(counts, reactant_a, reactant_b, rate_coeff, stoich, mask, tau, out):
    """One fused tau-leap over the masked channels (multiscale engine).

    Propensity evaluation, Poisson draws (binomial-clamped near a channel's
    firing headroom) and the stoichiometry apply in one loop; returns
    ``False`` when some count went negative (cross-channel competition), so
    the engine halves ``tau`` and calls again.
    """
    num_species, num_channels = stoich.shape
    for i in range(num_species):
        out[i] = counts[i]
    for e in range(num_channels):
        if not mask[e]:
            continue
        ca = counts[reactant_a[e]]
        if reactant_a[e] == reactant_b[e]:
            weight = ca * (ca - 1.0)
        else:
            weight = ca * counts[reactant_b[e]]
        if weight <= 0.0:
            continue
        mean = rate_coeff[e] * weight * tau
        if mean <= 0.0:
            continue
        headroom = 1e300
        for i in range(num_species):
            if stoich[i, e] < 0:
                cap = np.floor(counts[i] / -stoich[i, e])
                if cap < headroom:
                    headroom = cap
        if headroom < 1.0:
            continue
        if mean > 0.1 * headroom:
            p = mean / headroom
            if p > 1.0:
                p = 1.0
            fired = np.random.binomial(np.int64(headroom), p)
        else:
            fired = np.random.poisson(mean)
        for i in range(num_species):
            out[i] += stoich[i, e] * fired
    for i in range(num_species):
        if out[i] < 0.0:
            return False
    return True


class NumbaTauLeapKernel(NumpyTauLeapKernel):
    """Tau-leap kernel backed by :func:`_tau_leap_step`.

    Propensity evaluation for step-size selection stays on the (cheap,
    vectorised) reference path; the per-leap draw→apply loop is the fused
    nopython kernel drawing from the numba stream, seeded once from the
    engine's generator (the backend's usual distribution-identical
    contract).
    """

    def __init__(
        self,
        reactant_a: np.ndarray,
        reactant_b: np.ndarray,
        rate_coeff: np.ndarray,
        stoich: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(reactant_a, reactant_b, rate_coeff, stoich)
        self._stoich_dense = np.ascontiguousarray(stoich, dtype=np.int64)
        self._out = np.zeros(stoich.shape[0], dtype=np.float64)
        _seed_stream(_fresh_seed(rng))

    @property
    def jit(self) -> bool:
        return NUMBA_AVAILABLE

    def leap(
        self,
        counts: np.ndarray,
        mask: np.ndarray,
        tau: float,
        rng: np.random.Generator,
    ) -> tuple[bool, np.ndarray]:
        ok = _tau_leap_step(
            counts,
            self.reactant_a,
            self.reactant_b,
            self.rate_coeff,
            self._stoich_dense,
            mask,
            tau,
            self._out,
        )
        return bool(ok), self._out.copy()


class NumbaBatchedKernel:
    """Batched-engine kernel backed by :func:`_batched_advance`.

    One :meth:`advance` call runs *all* requested interactions — the
    per-batch loop lives inside the (compiled) kernel, which is where the
    10x over the reference backend comes from.
    """

    def __init__(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
        rng: np.random.Generator,
    ) -> None:
        self.table = table
        self.population_size = population_size
        self.small_count_threshold = small_count_threshold
        self.seen = np.zeros(table.num_states, dtype=bool)
        self._stats = np.zeros(2, dtype=np.int64)
        self._uniform = state_rates is None
        self._rates = (
            np.ones(table.num_states, dtype=np.float64)
            if state_rates is None
            else np.ascontiguousarray(state_rates, dtype=np.float64)
        )
        _seed_stream(_fresh_seed(rng))

    @property
    def jit(self) -> bool:
        return NUMBA_AVAILABLE

    def advance(
        self,
        counts: np.ndarray,
        max_interactions: int,
        batch_size: int,
        rng: np.random.Generator,
    ) -> tuple[int, int, int]:
        table = self.table
        before_batched = int(self._stats[0])
        before_fallback = int(self._stats[1])
        code = _batched_advance(
            counts,
            table.outcome_receiver,
            table.outcome_sender,
            table.outcome_probability,
            table.outcome_count,
            table.null_probability,
            self._rates,
            self._uniform,
            self.population_size,
            max_interactions,
            batch_size,
            self.small_count_threshold,
            self.seen,
            self._stats,
        )
        if code == 1:
            raise SimulationError(
                "scheduler assigns zero total weight to the current configuration"
            )
        if code == 2:
            raise SimulationError(
                "state-weighted scheduler: fewer than two agents have a "
                "positive rate; no ordered pair can be selected"
            )
        return (
            max_interactions,
            int(self._stats[0]) - before_batched,
            int(self._stats[1]) - before_fallback,
        )


class NumbaFiniteRoundKernel:
    """Matching-round kernel backed by :func:`_apply_round`.

    Seeds the kernel stream lazily from the first round's engine generator,
    so seeded vector runs stay reproducible per seed.
    """

    def __init__(self, table: "CompiledTransitionTable") -> None:
        self.table = table
        self._seeded = False

    @property
    def jit(self) -> bool:
        return NUMBA_AVAILABLE

    def apply(
        self,
        state: np.ndarray,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        if not self._seeded:
            _seed_stream(_fresh_seed(rng))
            self._seeded = True
        table = self.table
        _apply_round(
            state, rec, sen,
            table.outcome_receiver,
            table.outcome_sender,
            table.outcome_probability,
            table.outcome_count,
            table.null_probability,
        )


@register_backend
class NumbaBackend(ArrayBackend):
    """JIT backend: available only when numba is importable."""

    name = "numba"
    jit = True

    @classmethod
    def available(cls) -> bool:
        return NUMBA_AVAILABLE

    @classmethod
    def unavailable_reason(cls) -> str | None:
        if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
            return None
        return "numba is not installed (pip install -e .[jit])"

    def batched_kernel(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
        rng: np.random.Generator,
    ) -> NumbaBatchedKernel:
        return NumbaBatchedKernel(
            table, state_rates, population_size, small_count_threshold, rng
        )

    def finite_round_kernel(
        self, table: "CompiledTransitionTable"
    ) -> "NumbaFiniteRoundKernel | NumpyFiniteRoundKernel":
        return NumbaFiniteRoundKernel(table)

    def tau_leap_kernel(
        self,
        reactant_a: np.ndarray,
        reactant_b: np.ndarray,
        rate_coeff: np.ndarray,
        stoich: np.ndarray,
        rng: np.random.Generator,
    ) -> NumbaTauLeapKernel:
        return NumbaTauLeapKernel(reactant_a, reactant_b, rate_coeff, stoich, rng)

    def describe(self) -> str:
        if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
            return "numba JIT-fused kernels (distribution-identical to numpy)"
        return "numba JIT-fused kernels (unavailable: numba not installed)"
