"""Reference numpy backend: the stream-preserving implementation of the seam.

This module is the behavioural specification of the fused kernels.  Every
draw made by :class:`NumpyBatchedKernel` and :class:`NumpyFiniteRoundKernel`
happens against the *engine's* ``numpy.random.Generator`` in exactly the
call sequence the pre-seam inline engine code used, so a seeded run through
the numpy backend reproduces historical trajectories bitwise (pinned against
recorded fixtures by ``tests/backend/test_numpy_golden.py``).

The kernels are nevertheless faster than the code they replaced, by hoisting
everything that does not depend on the current batch out of the batch loop:

* the ``S x S`` pair-weight matrix is kept allocated across batches and only
  the rows/columns of states whose counts changed since the previous batch
  are recomputed (products of bitwise-identical float64 factors are
  bitwise-identical, so incremental rebuilds preserve the stream);
* per-pair outcome splitting tables — normalised multinomial ``pvals``,
  output state indices, the null mask — are precomputed once per protocol;
* the small-count reactive test caches its reactive/involved masks keyed on
  the support (which states are present), not on the counts;
* the count-delta buffer is preallocated.

Only what a fixed configuration determines is cached; anything depending on
the counts themselves is recomputed (incrementally) every batch.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.compiled import CompiledTransitionTable

__all__ = [
    "NumpyBackend",
    "NumpyBatchedKernel",
    "NumpyFiniteRoundKernel",
    "NumpyTauLeapKernel",
    "pair_weight_matrix",
]


def pair_weight_matrix(
    counts: np.ndarray, rates: np.ndarray | None
) -> np.ndarray:
    """Unnormalised ordered state-pair selection weights at ``counts``.

    Uniform policy (``rates=None``): ``c_i c_j`` off-diagonal,
    ``c_i (c_i - 1)`` on the diagonal.  A state-weighted policy scales every
    agent of state ``s`` by its rate ``r_s``: off-diagonal
    ``(r_i c_i)(r_j c_j)``, diagonal ``(r_i c_i) r_i (c_i - 1)``.
    """
    counts = counts.astype(np.float64)
    if rates is None:
        weights = np.outer(counts, counts)
        np.fill_diagonal(weights, counts * (counts - 1.0))
    else:
        scaled = rates * counts
        weights = np.outer(scaled, scaled)
        np.fill_diagonal(weights, scaled * rates * (counts - 1.0))
    return weights


class NumpyBatchedKernel:
    """Fused multinomial draw→apply kernel of the batched engine.

    One :meth:`advance` call executes a single batch (or its exact
    sequential fallback) against the caller's count vector, drawing from the
    caller's generator in the pre-seam call order — the stream-preservation
    contract of the numpy backend.

    Parameters mirror :meth:`repro.backend.ArrayBackend.batched_kernel`;
    ``state_rates=None`` selects the uniform scheduling policy.
    """

    jit = False

    def __init__(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
    ) -> None:
        self.table = table
        self.state_rates = state_rates
        self.population_size = population_size
        self.small_count_threshold = small_count_threshold
        size = table.num_states
        #: States that gained an agent at any point (index space); the
        #: engine unions this into its ``states_seen`` bookkeeping.
        self.seen = np.zeros(size, dtype=bool)
        # Hoisted per-configuration invariants (see module docstring).
        self._weights = np.zeros((size, size), dtype=np.float64)
        self._scaled = np.zeros(size, dtype=np.float64)
        self._weight_counts: np.ndarray | None = None
        self._delta = np.zeros(size, dtype=np.int64)
        self._support_key: bytes | None = None
        self._involved: np.ndarray | None = None
        self._has_reactive_support = False
        self._splits = self._build_split_table()
        self._exact_table = self._build_exact_table()

    # -- hoisted invariant tables ---------------------------------------------

    def _build_split_table(self) -> list[list[tuple | None]]:
        """Per-pair outcome-splitting invariants.

        ``[i][j]`` is ``None`` for null pairs, else ``(pvals, outputs)``:
        ``pvals`` is the normalised multinomial argument over explicit
        outcomes plus the null bucket (``None`` when the single outcome is
        certain and no draw is needed), ``outputs`` the list of
        ``(receiver_out, sender_out)`` index pairs.  Normalising once here is
        bitwise-identical to the historical per-batch ``pvals / pvals.sum()``
        because the inputs and the operations are the same.
        """
        table = self.table
        size = table.num_states
        splits: list[list[tuple | None]] = []
        for i in range(size):
            row: list[tuple | None] = []
            for j in range(size):
                if table.is_null[i, j]:
                    row.append(None)
                    continue
                count = int(table.outcome_count[i, j])
                probabilities = table.outcome_probability[i, j, :count]
                null_mass = float(table.null_probability[i, j])
                if null_mass > 0.0 or count > 1:
                    pvals = np.append(probabilities, null_mass)
                    pvals = pvals / pvals.sum()
                else:
                    pvals = None
                outputs = [
                    (
                        int(table.outcome_receiver[i, j, k]),
                        int(table.outcome_sender[i, j, k]),
                    )
                    for k in range(count)
                ]
                row.append((pvals, outputs))
            splits.append(row)
        return splits

    def _build_exact_table(self) -> list[list[tuple | None]]:
        """Pure-Python view of the compiled tables for the exact fallback.

        ``[i][j]`` is ``None`` for null pairs, else ``(outcomes, randomized)``
        where ``outcomes`` is a list of ``(cumulative_probability,
        receiver_out, sender_out)`` and ``randomized`` says whether an
        outcome draw is needed at all.  Numpy scalar indexing per interaction
        is an order of magnitude slower than list access, which matters in
        the fallback regimes where every interaction goes through this path.
        """
        table = self.table
        size = table.num_states
        exact: list[list[tuple | None]] = []
        for i in range(size):
            row: list[tuple | None] = []
            for j in range(size):
                if table.is_null[i, j]:
                    row.append(None)
                    continue
                outcomes = []
                mass = 0.0
                for k in range(int(table.outcome_count[i, j])):
                    mass += float(table.outcome_probability[i, j, k])
                    outcomes.append(
                        (
                            mass,
                            int(table.outcome_receiver[i, j, k]),
                            int(table.outcome_sender[i, j, k]),
                        )
                    )
                randomized = len(outcomes) > 1 or table.null_probability[i, j] > 0.0
                row.append((outcomes, randomized))
            exact.append(row)
        return exact

    # -- per-batch computations -----------------------------------------------

    def _pair_pvals(self, counts: np.ndarray) -> np.ndarray:
        """Normalised pair probabilities, rebuilt incrementally.

        Only the rows and columns of states whose counts changed since the
        previous batch are recomputed; an unchanged entry keeps the value
        the full formula would produce, so the multinomial sees the same
        ``pvals`` as a from-scratch rebuild.
        """
        weights = self._weights
        rates = self.state_rates
        if self._weight_counts is None:
            weights[:] = pair_weight_matrix(counts, rates)
            self._scaled[:] = (
                counts.astype(np.float64)
                if rates is None
                else rates * counts.astype(np.float64)
            )
            self._weight_counts = counts.copy()
        else:
            changed = np.nonzero(counts != self._weight_counts)[0]
            if changed.size:
                scaled = self._scaled
                counts_f = counts[changed].astype(np.float64)
                if rates is None:
                    scaled[changed] = counts_f
                    diagonal = counts_f * (counts_f - 1.0)
                else:
                    scaled[changed] = rates[changed] * counts_f
                    diagonal = scaled[changed] * rates[changed] * (counts_f - 1.0)
                weights[changed, :] = scaled[changed, None] * scaled[None, :]
                weights[:, changed] = scaled[:, None] * scaled[None, changed]
                weights[changed, changed] = diagonal
                self._weight_counts[changed] = counts[changed]
        total = weights.sum()
        if total <= 0.0:
            raise SimulationError(
                "scheduler assigns zero total weight to the current configuration"
            )
        # Normalising by the actual float sum (exactly n(n-1) in exact
        # arithmetic for the uniform policy) keeps the vector a valid
        # multinomial pvals argument despite rounding.
        return weights / total

    def _reactive_counts_small(self, counts: np.ndarray) -> bool:
        """Whether every reactive state currently has a dangerously small count.

        A state is *reactive* here if it is present and participates in some
        non-null ordered pair with another *present* state.  The reactive and
        involved masks depend only on the support, so they are cached keyed
        on which states are present rather than recomputed per batch.
        """
        if self.small_count_threshold == 0:
            return False
        present = counts > 0
        key = present.tobytes()
        if key != self._support_key:
            reactive = ~self.table.is_null & present[:, None] & present[None, :]
            self._has_reactive_support = bool(reactive.any())
            self._involved = reactive.any(axis=1) | reactive.any(axis=0)
            self._support_key = key
        if not self._has_reactive_support:
            return False
        return bool(np.all(counts[self._involved] < self.small_count_threshold))

    # -- the fused advance ----------------------------------------------------

    def advance(
        self,
        counts: np.ndarray,
        max_interactions: int,
        batch_size: int,
        rng: np.random.Generator,
    ) -> tuple[int, int, int]:
        """Advance one batch; return ``(done, batched, fallback)`` increments.

        The reference kernel deliberately advances a *single* batch per call
        — the engine's Python loop over batches is part of the historical
        RNG-stream contract (each batch draws its multinomial separately).
        JIT backends advance all ``max_interactions`` in one call instead.
        """
        batch = min(batch_size, max_interactions)
        if self._reactive_counts_small(counts):
            self._run_exact(counts, batch, rng)
            return batch, 0, 1
        pair_counts = rng.multinomial(
            batch, self._pair_pvals(counts).ravel()
        ).reshape(self.table.outcome_count.shape)
        reactive = np.where(self.table.is_null, 0, pair_counts)
        if not reactive.any():
            return batch, 1, 0
        consumed = reactive.sum(axis=1) + reactive.sum(axis=0)
        if np.any(consumed > counts):
            # The frozen-rate draw used more agents of some state than exist;
            # the batch cannot be applied consistently, so execute it exactly.
            self._run_exact(counts, batch, rng)
            return batch, 0, 1
        delta = self._delta
        delta[:] = 0
        seen = self.seen
        splits = self._splits
        rows, cols = np.nonzero(reactive)
        for i, j in zip(rows.tolist(), cols.tolist()):
            occurrences = int(reactive[i, j])
            pvals, outputs = splits[i][j]
            if pvals is not None:
                split = rng.multinomial(occurrences, pvals)[: len(outputs)]
            else:
                split = (occurrences,)
            for (receiver_out, sender_out), events in zip(outputs, split):
                events = int(events)
                if events == 0:
                    continue
                delta[i] -= events
                delta[j] -= events
                delta[receiver_out] += events
                delta[sender_out] += events
                seen[receiver_out] = True
                seen[sender_out] = True
        counts += delta
        return batch, 1, 0

    # -- exact sequential fallback --------------------------------------------

    def _run_exact(
        self, counts_array: np.ndarray, count: int, rng: np.random.Generator
    ) -> None:
        """Execute ``count`` interactions one at a time, exactly.

        Works on plain Python lists with thresholds pre-drawn in one block,
        so the exact path costs the same as the count engine's per-step loop
        rather than paying numpy scalar/RNG overhead every interaction.  The
        receiver is sampled by count weight, the sender among the remaining
        ``n - 1`` agents (the threshold shift is the same construction as
        :meth:`CountSimulator._sample_state_weighted`).  Under a
        state-weighted policy the same loop runs on rate-scaled float
        weights (:meth:`_run_exact_weighted`).
        """
        if self.state_rates is not None:
            self._run_exact_weighted(counts_array, count, rng)
            return
        n = self.population_size
        counts = counts_array.tolist()
        cumulative = []
        total = 0
        for value in counts:
            total += value
            cumulative.append(total)
        receiver_draws = rng.integers(0, n, size=count).tolist()
        sender_draws = rng.integers(0, n - 1, size=count).tolist()
        exact = self._exact_table
        seen = self.seen
        for threshold, co_threshold in zip(receiver_draws, sender_draws):
            receiver = bisect_right(cumulative, threshold)
            if co_threshold >= cumulative[receiver] - 1:
                co_threshold += 1
            sender = bisect_right(cumulative, co_threshold)
            entry = exact[receiver][sender]
            if entry is None:
                continue
            outcomes, randomized = entry
            if randomized:
                draw = rng.random()
                for mass, receiver_out, sender_out in outcomes:
                    if draw < mass:
                        break
                else:
                    continue  # residual mass = null transition
            else:
                _, receiver_out, sender_out = outcomes[0]
            counts[receiver] -= 1
            counts[sender] -= 1
            counts[receiver_out] += 1
            counts[sender_out] += 1
            seen[receiver_out] = True
            seen[sender_out] = True
            total = 0
            cumulative = []
            for value in counts:
                total += value
                cumulative.append(total)
        counts_array[:] = counts

    def _run_exact_weighted(
        self, counts_array: np.ndarray, count: int, rng: np.random.Generator
    ) -> None:
        """Exact per-interaction stepping under per-state activity rates.

        Samples the ordered pair of distinct agents ``(a, b)`` with
        probability proportional to ``r_a r_b`` — the *same* joint
        distribution the batch multinomial of :meth:`_pair_pvals` draws
        from, so the two paths stay interchangeable within one run.
        Implemented as two independent rate-weighted state draws with
        same-agent rejection: a same-state draw ``(i, i)`` is the same agent
        with probability ``1 / c_i`` and is then redrawn.
        """
        rates = self.state_rates.tolist()
        counts = counts_array.tolist()

        def _cumulative() -> tuple[list[float], float, int]:
            cumulative: list[float] = []
            total = 0.0
            positive_agents = 0
            for rate, value in zip(rates, counts):
                total += rate * value
                cumulative.append(total)
                if rate > 0:
                    positive_agents += value
            return cumulative, total, positive_agents

        def _draw_state() -> int:
            return min(
                bisect_right(cumulative, rng.random() * total),
                len(counts) - 1,
            )

        cumulative, total, positive_agents = _cumulative()
        exact = self._exact_table
        seen = self.seen
        for _ in range(count):
            if total <= 0.0 or positive_agents < 2:
                raise SimulationError(
                    "state-weighted scheduler: fewer than two agents have a "
                    "positive rate; no ordered pair can be selected"
                )
            while True:
                receiver = _draw_state()
                sender = _draw_state()
                if receiver != sender:
                    break
                if counts[receiver] >= 2 and (
                    rng.random() * counts[receiver] >= 1.0
                ):
                    break
            entry = exact[receiver][sender]
            if entry is None:
                continue
            outcomes, randomized = entry
            if randomized:
                draw = rng.random()
                for mass, receiver_out, sender_out in outcomes:
                    if draw < mass:
                        break
                else:
                    continue  # residual mass = null transition
            else:
                _, receiver_out, sender_out = outcomes[0]
            counts[receiver] -= 1
            counts[sender] -= 1
            counts[receiver_out] += 1
            counts[sender_out] += 1
            seen[receiver_out] = True
            seen[sender_out] = True
            cumulative, total, positive_agents = _cumulative()
        counts_array[:] = counts


class NumpyFiniteRoundKernel:
    """Fused gather→sample→scatter matching-round kernel (reference path).

    Verbatim port of the pre-seam ``FiniteStateVectorProtocol.apply_round``
    body: same operations against the caller's generator in the same order,
    so seeded vector runs are bitwise-reproducible across the refactor.
    """

    jit = False

    def __init__(self, table: "CompiledTransitionTable") -> None:
        self.table = table

    def apply(
        self,
        state: np.ndarray,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Apply one matching round to the per-agent state array in place."""
        table = self.table
        state_r = state[rec]
        state_s = state[sen]
        reactive = ~table.is_null[state_r, state_s]
        if not reactive.any():
            return
        rec = rec[reactive]
        sen = sen[reactive]
        i = state_r[reactive]
        j = state_s[reactive]
        # Sample one outcome per reactive pair: u falls either inside the
        # cumulative explicit-outcome mass (outcome k fires) or beyond it
        # (the residual null mass; the pair is left unchanged).
        cumulative = np.cumsum(table.outcome_probability[i, j], axis=1)
        u = rng.random(i.size)
        fired = u < cumulative[:, -1]
        if not fired.any():
            return
        outcome = (u[:, None] < cumulative).argmax(axis=1)[fired]
        i = i[fired]
        j = j[fired]
        state[rec[fired]] = table.outcome_receiver[i, j, outcome]
        state[sen[fired]] = table.outcome_sender[i, j, outcome]


class NumpyTauLeapKernel:
    """Reference tau-leap kernel of the multiscale engine.

    ``propensities`` evaluates the parallel-time channel rates at float
    counts; ``leap`` draws one Poisson tau-leap over the masked channels and
    applies the stoichiometry, drawing against the *engine's* generator (the
    reference-backend convention).  Draws whose mean exceeds 10% of a
    channel's firing headroom ``L`` (the largest count of firings the
    consumed species allow) are clamped to ``Binomial(L, mean/L)`` — same
    mean, support bounded by the headroom — so a single channel can never
    overdraw its own reactants; cross-channel competition for a shared
    species is caught by the non-negativity check and reported as
    ``ok=False`` for the engine's halve-and-redraw loop.
    """

    def __init__(
        self,
        reactant_a: np.ndarray,
        reactant_b: np.ndarray,
        rate_coeff: np.ndarray,
        stoich: np.ndarray,
    ) -> None:
        self.reactant_a = reactant_a
        self.reactant_b = reactant_b
        self.rate_coeff = rate_coeff
        self.stoich = stoich
        self.is_diagonal = reactant_a == reactant_b
        #: Per-channel consumption coefficients (``max(-stoich, 0)``).
        self.consumption = np.maximum(-stoich, 0).astype(np.float64)
        self._consumes = self.consumption > 0.0

    @property
    def jit(self) -> bool:
        return False

    def propensities(self, counts: np.ndarray) -> np.ndarray:
        """Parallel-time channel rates at ``counts`` (clipped at 0)."""
        ca = counts[self.reactant_a]
        cb = np.where(self.is_diagonal, ca - 1.0, counts[self.reactant_b])
        return self.rate_coeff * np.maximum(ca, 0.0) * np.maximum(cb, 0.0)

    def _headroom(self, counts: np.ndarray) -> np.ndarray:
        """Largest number of firings each channel's consumed species allow."""
        with np.errstate(divide="ignore", invalid="ignore"):
            caps = np.where(
                self._consumes,
                np.floor(counts[:, None] / self.consumption),
                np.inf,
            )
        return caps.min(axis=0)

    def leap(
        self,
        counts: np.ndarray,
        mask: np.ndarray,
        tau: float,
        rng: np.random.Generator,
    ) -> tuple[bool, np.ndarray]:
        """One fused leap: propensities → clamped draws → apply.

        Returns ``(ok, new_counts)``; ``ok=False`` means some count went
        negative and the caller should halve ``tau`` and call again.
        """
        lam = self.propensities(counts)
        active = mask & (lam > 0.0)
        draws = np.zeros(lam.size, dtype=np.int64)
        if active.any():
            means = lam[active] * tau
            headroom = self._headroom(counts)[active]
            clamp = means > 0.1 * headroom
            fired = np.zeros(means.size, dtype=np.int64)
            if clamp.any():
                trials = headroom[clamp].astype(np.int64)
                fired[clamp] = rng.binomial(
                    trials, np.minimum(means[clamp] / headroom[clamp], 1.0)
                )
            if (~clamp).any():
                fired[~clamp] = rng.poisson(means[~clamp])
            draws[active] = fired
        new_counts = counts + self.stoich @ draws
        return bool((new_counts >= 0.0).all()), new_counts


from repro.backend import ArrayBackend, register_backend  # noqa: E402


@register_backend
class NumpyBackend(ArrayBackend):
    """The reference backend: always available, bitwise stream-preserving."""

    name = "numpy"
    jit = False

    def describe(self) -> str:
        return "reference kernels on the engine RNG stream (always available)"
