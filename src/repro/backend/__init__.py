"""Pluggable array backends: one seam, several implementations of the hot loops.

Every engine of :mod:`repro.engine` used to carry its hot loops inline —
the batched engine's multinomial draw→apply, the vector engine's matching
rounds, the state-weighted pair-weight computation the CRN "thinned" mode
leans on.  BENCH_engines.json showed all of them saturating near 10^7
interactions/s, dominated by per-batch Python dispatch rather than by the
arithmetic.  This package makes the kernel implementation a *backend* chosen
at engine construction time (``build_engine(..., backend=...)``,
``--backend`` on the CLI, or the ``REPRO_BACKEND`` environment variable), so
an engine is never forked to go faster.

Backends
--------

``numpy``
    The reference implementation (:mod:`repro.backend.numpy_backend`) and
    the default.  Draw-for-draw **stream-preserving**: a seeded run produces
    bitwise-identical trajectories to the pre-seam engines.  Hot-loop
    invariants are hoisted out of the batch loop (incremental pair-weight
    rebuilds, cached per-pair outcome distributions, preallocated buffers),
    so the reference backend is itself faster than the inline code it
    replaced.
``numba``
    JIT-fused kernels (:mod:`repro.backend.numba_backend`) compiled with
    `numba <https://numba.pydata.org>`_ when it is installed
    (``pip install -e .[jit]``).  Distribution-identical to numpy — the
    kernels draw from numba's own PRNG — and exercised interpreted (slow but
    correct) on numpy-only installs by the test suite.
``native``
    A C kernel (:mod:`repro.backend.native_backend`) compiled at first use
    through ``cffi`` and the system C compiler; the fastest option for the
    batched engine (>=10x the numpy backend at n >= 10^6).  Also
    distribution-identical.

Selecting an unavailable backend is never an error: :func:`resolve_backend`
warns and falls back to numpy, so numpy-only installs stay fully functional
(the graceful-fallback contract is pinned by ``tests/backend``).

The fused-kernel contract each backend implements is documented in
``DESIGN.md`` (Array backends); engines call :meth:`ArrayBackend.batched_kernel`
and friends and never branch on the backend name.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.compiled import CompiledTransitionTable

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "ArrayBackend",
    "backend_availability",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Environment variable naming the default backend for this process.
ENV_BACKEND = "REPRO_BACKEND"

#: The backend used when neither the caller nor the environment chooses one.
DEFAULT_BACKEND = "numpy"


class ArrayBackend:
    """Base class of the array-backend seam.

    A backend builds the *fused kernels* the engines run their hot loops
    through.  The base class implements every kernel with the reference
    numpy code path, so a subclass only overrides the kernels it actually
    accelerates — anything it leaves alone transparently runs the reference
    implementation (e.g. the native backend accelerates the batched engine
    and inherits the vector round kernel).

    Kernel contract
    ---------------
    ``batched_kernel(table, state_rates, population_size, small_count_threshold, rng)``
        Object with an ``advance(counts, max_interactions, batch_size, rng)
        -> (done, batched_batches, fallback_batches)`` method executing up
        to ``max_interactions`` interactions against the caller's count
        vector (mutated in place), and a boolean ``seen`` array marking
        every state index that gained an agent at any point.  A backend may
        advance one batch per call (the numpy reference, preserving the
        historical per-batch RNG stream) or everything in one call (the JIT
        backends, eliminating per-batch Python dispatch).
    ``finite_round_kernel(table)``
        Object with an ``apply(state, rec, sen, rng)`` method applying one
        matching round of a compiled finite-state protocol to the per-agent
        state array.
    ``pair_weights(counts, rates)``
        The state-weighted ordered-pair weight matrix ``(r_i c_i)(r_j c_j)``
        (diagonal ``(r_i c_i) r_i (c_i - 1)``; ``rates=None`` is the uniform
        policy) — the count-level scheduling computation shared by the
        batched multinomial and the CRN thinned lowering.
    ``tau_leap_kernel(reactant_a, reactant_b, rate_coeff, stoich, rng)``
        The multiscale engine's hot kernel over per-channel reaction arrays:
        ``propensities(counts)`` evaluates the parallel-time channel rates,
        and ``leap(counts, mask, tau, rng) -> (ok, new_counts)`` fuses the
        propensity evaluation, Poisson draws (binomial-clamped near a
        channel's firing headroom) and the stoichiometry apply for one leap,
        reporting ``ok=False`` when a draw would drive a count negative so
        the engine can halve ``tau`` and redraw.
    ``draw_matching_arrays(members, rng)`` / ``thin_members(rates, rng)``
        The vector engine's round draws: the shared uniform matching and the
        per-agent rate thinning of the weighted round scheduler.
    """

    #: Registry key (``--backend <name>``).
    name: ClassVar[str] = ""
    #: Whether the backend's kernels are JIT/AOT compiled (vs interpreted).
    jit: ClassVar[bool] = False

    @classmethod
    def available(cls) -> bool:
        """Whether the backend can run in this environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        """Why :meth:`available` is ``False`` (``None`` when available)."""
        return None

    # -- fused kernels (reference implementations; override to accelerate) ---

    def batched_kernel(
        self,
        table: "CompiledTransitionTable",
        state_rates: np.ndarray | None,
        population_size: int,
        small_count_threshold: int,
        rng: np.random.Generator,
    ):
        """Build the batched engine's fused draw→apply kernel."""
        from repro.backend.numpy_backend import NumpyBatchedKernel

        return NumpyBatchedKernel(
            table, state_rates, population_size, small_count_threshold
        )

    def finite_round_kernel(self, table: "CompiledTransitionTable"):
        """Build the vector engine's fused matching-round kernel."""
        from repro.backend.numpy_backend import NumpyFiniteRoundKernel

        return NumpyFiniteRoundKernel(table)

    def pair_weights(
        self, counts: np.ndarray, rates: np.ndarray | None
    ) -> np.ndarray:
        """Ordered state-pair selection weights at the given counts."""
        from repro.backend.numpy_backend import pair_weight_matrix

        return pair_weight_matrix(counts, rates)

    def draw_matching_arrays(
        self, members: "int | np.ndarray", rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """One uniform random matching with uniformly oriented pairs."""
        from repro.engine.scheduler import draw_matching_arrays

        return draw_matching_arrays(members, rng)

    def thin_members(
        self, rates: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Rate-thinned member selection for weighted matching rounds."""
        return np.nonzero(rng.random(rates.size) < rates)[0]

    def tau_leap_kernel(
        self,
        reactant_a: np.ndarray,
        reactant_b: np.ndarray,
        rate_coeff: np.ndarray,
        stoich: np.ndarray,
        rng: np.random.Generator,
    ):
        """Build the multiscale engine's fused tau-leap kernel."""
        from repro.backend.numpy_backend import NumpyTauLeapKernel

        return NumpyTauLeapKernel(reactant_a, reactant_b, rate_coeff, stoich)

    def describe(self) -> str:
        """One-line description for ``repro engines`` output."""
        return self.name


BACKEND_REGISTRY: dict[str, type[ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(cls: type[ArrayBackend]) -> type[ArrayBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    if not cls.name:
        raise SimulationError("array backends must declare a non-empty name")
    BACKEND_REGISTRY[cls.name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(BACKEND_REGISTRY)


def get_backend(name: str) -> ArrayBackend:
    """Instantiate (and memoise) a registered backend, without fallback.

    Raises
    ------
    SimulationError
        For an unknown backend name.  Availability is *not* checked here;
        use :func:`resolve_backend` for the warn-and-fall-back behaviour.
    """
    try:
        cls = BACKEND_REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; registered: {', '.join(backend_names())}"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = cls()
    return _INSTANCES[name]


def backend_availability() -> dict[str, str | None]:
    """Availability report: name → ``None`` (available) or the reason not."""
    return {
        name: None if cls.available() else cls.unavailable_reason()
        for name, cls in BACKEND_REGISTRY.items()
    }


def resolve_backend(
    backend: "ArrayBackend | str | None" = None,
) -> ArrayBackend:
    """Resolve a backend choice to a usable instance.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and falls
    back to :data:`DEFAULT_BACKEND`.  A backend that is registered but not
    available in this environment (numba or a C compiler missing) produces a
    :class:`UserWarning` and the numpy reference backend instead — numpy-only
    installs run every workload, just without the speedup.

    Raises
    ------
    SimulationError
        For a name that matches no registered backend.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or DEFAULT_BACKEND
    if not isinstance(backend, str):
        raise SimulationError(
            f"backend must be a name or ArrayBackend, got {type(backend).__name__}"
        )
    resolved = get_backend(backend)
    if not resolved.available():
        reason = resolved.unavailable_reason() or "not available"
        warnings.warn(
            f"array backend {backend!r} is unavailable ({reason}); "
            f"falling back to the numpy reference backend",
            UserWarning,
            stacklevel=2,
        )
        return get_backend(DEFAULT_BACKEND)
    return resolved


# Import-time registration of the shipped backends.  The numpy backend must
# register first: it is the fallback every other backend resolves to.
from repro.backend import numpy_backend as _numpy_backend  # noqa: E402
from repro.backend import numba_backend as _numba_backend  # noqa: E402
from repro.backend import native_backend as _native_backend  # noqa: E402

#: Registered backend names (import-time snapshot for CLI choices).
BACKEND_NAMES = backend_names()
