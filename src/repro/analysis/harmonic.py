"""Harmonic numbers and related constants.

The expected completion time of a one-way epidemic is a harmonic sum
(Lemma A.1: ``E[T] = (n-1)/n * H_{n-1}``), and the expectation of the maximum
of geometric random variables involves the Euler–Mascheroni constant
(Lemma D.4).  This module provides both, with an exact summation for small
arguments and the asymptotic expansion for large ones.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError

#: The Euler–Mascheroni constant, ``lim (H_n - ln n)``.
EULER_MASCHERONI = 0.5772156649015329

#: Switch-over point between exact summation and the asymptotic expansion.
_EXACT_LIMIT = 10_000


def euler_mascheroni() -> float:
    """Return the Euler–Mascheroni constant ``gamma ~ 0.5772``."""
    return EULER_MASCHERONI


def harmonic_number(n: int) -> float:
    """Return the ``n``-th harmonic number ``H_n = sum_{k=1..n} 1/k``.

    Exact summation is used for ``n <= 10_000``; beyond that the standard
    asymptotic expansion ``ln n + gamma + 1/(2n) - 1/(12 n^2)`` is used, whose
    error is below ``1/(120 n^4)`` — far below anything the bounds here need.

    Parameters
    ----------
    n:
        A non-negative integer (``H_0 = 0``).
    """
    if n < 0:
        raise AnalysisError(f"harmonic number needs n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n <= _EXACT_LIMIT:
        return sum(1.0 / k for k in range(1, n + 1))
    return (
        math.log(n)
        + EULER_MASCHERONI
        + 1.0 / (2 * n)
        - 1.0 / (12 * n * n)
    )
