"""Protocol-level correctness bounds (Lemmas 3.2, 3.8, 3.11, 3.12, Theorem 3.1).

This module assembles the ingredient bounds (partition balance, ``logSize2``
range, epidemic tails, interaction concentration, averaged-maxima Chernoff)
into the paper's headline numbers:

* the worker/storage split deviates from ``n/2`` by more than ``a`` with
  probability at most ``e^{-2 a^2 / n}`` (Lemma 3.2);
* ``logSize2`` lies in ``[log2 n - log2 ln n, 2 log2 n + 1]`` except with
  probability ``1/n + e^{-n/18}`` (Lemma 3.8);
* the averaged estimate errs by more than 5.7 with probability at most
  ``6/n`` (Lemma 3.11), and the full protocol errs with probability at most
  ``9/n`` (Lemma 3.12 / Theorem 3.1).

The functions return the paper's bound values so that experiments can print
"claimed vs observed" tables.
"""

from __future__ import annotations

import math

from repro.analysis.epidemic_theory import corollary_3_5_probability
from repro.analysis.subexponential import corollary_d10_probability
from repro.exceptions import AnalysisError


def partition_deviation_probability(population: int, deviation: float) -> float:
    """Lemma 3.2: ``Pr[| |A| - n/2 | >= a] <= 2 e^{-2 a^2 / n}`` (two-sided)."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if deviation < 0:
        raise AnalysisError(f"deviation must be non-negative, got {deviation}")
    return min(1.0, 2.0 * math.exp(-2.0 * deviation * deviation / population))


def partition_within_third_probability(population: int) -> float:
    """Corollary 3.3: ``|A| in [n/3, 2n/3]`` fails with probability ``<= e^{-n/18}``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, math.exp(-population / 18.0))


def log_size2_range(population: int) -> tuple[float, float]:
    """Lemma 3.8's likely range of ``logSize2``: ``[log2 n - log2 ln n, 2 log2 n + 1]``."""
    if population < 3:
        raise AnalysisError(f"population must be at least 3, got {population}")
    lower = math.log2(population) - math.log2(math.log(population))
    upper = 2.0 * math.log2(population) + 1.0
    return lower, upper


def log_size2_range_probability(population: int) -> float:
    """Lemma 3.8: ``logSize2`` escapes its range w.p. at most ``1/n + e^{-n/18}``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 1.0 / population + math.exp(-population / 18.0))


def averaging_error_probability(population: int, additive_error: float = 5.7) -> float:
    """Lemma 3.11: the averaged estimate errs by ``>= 5.7`` w.p. at most ``6/n``.

    The 5.7 decomposes as 4.7 (Corollary D.10, with ``N ~ n/2`` workers) plus
    1 (``log2(n/2) = log2 n - 1``); errors other than the paper's 5.7 are
    rejected because the decomposition is specific to that constant.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if abs(additive_error - 5.7) > 1e-9:
        raise AnalysisError("Lemma 3.11 is stated for additive error 5.7")
    return min(1.0, 6.0 / population)


def final_error_probability(population: int) -> float:
    """Lemma 3.12 / Theorem 3.1: ``Pr[|output - log2 n| >= 5.7] <= 9/n``.

    Union bound over: ``logSize2`` too small, the partition too unbalanced,
    a slow epidemic, an epoch ending early, and the averaging error.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 9.0 / population)


def convergence_time_probability(population: int) -> float:
    """Corollary 3.10: convergence exceeds ``O(log^2 n)`` w.p. at most ``1/n^2``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 1.0 / population**2)


def state_bound_probability(population: int) -> float:
    """Lemma 3.9: the ``O(log^4 n)`` state bound fails w.p. ``O(log n / n)``.

    Returned as ``11 * log2(n) / n`` (the constant appearing in the proof).
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 11.0 * math.log2(population) / population)


def theorem_3_1_summary(population: int, sample_count: int | None = None) -> dict:
    """All of Theorem 3.1's claimed bounds for a given population size.

    Convenient for the EXPERIMENTS.md "claimed vs measured" tables.

    Parameters
    ----------
    population:
        Population size ``n``.
    sample_count:
        Optional ``K`` (number of epochs actually run); when given, the
        averaged-estimate bound of Corollary D.10 is evaluated for that ``K``.
    """
    if population < 3:
        raise AnalysisError(f"population must be at least 3, got {population}")
    summary = {
        "population": population,
        "additive_error_claim": 5.7,
        "error_probability_bound": final_error_probability(population),
        "convergence_failure_bound": convergence_time_probability(population),
        "state_bound_failure": state_bound_probability(population),
        "log_size2_range": log_size2_range(population),
        "log_size2_failure": log_size2_range_probability(population),
        "epidemic_failure": corollary_3_5_probability(population),
        "partition_failure": partition_within_third_probability(population),
    }
    if sample_count is not None:
        summary["averaging_failure"] = corollary_d10_probability(
            population, sample_count
        )
    return summary
