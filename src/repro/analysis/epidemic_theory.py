"""Epidemic completion-time bounds (Lemma A.1, Corollaries 3.4 and 3.5).

The time ``T`` for a one-way epidemic to reach all ``n`` agents satisfies
``E[T] = (n-1)/n * H_{n-1}`` (about ``ln n``), with exponential upper tails.
When the epidemic runs only inside a sub-population of ``n/c`` agents, every
useful interaction is ``c^2`` times rarer, so the bound degrades only by a
constant factor (Corollary 3.4).  Corollary 3.5 instantiates ``c = 3`` and
``alpha_u = 24``: an epidemic among at least ``n/3`` agents finishes within
``24 ln n`` time except with probability ``27 / n^3``.  These numbers are what
fix the phase-clock constant 95 in the protocol.
"""

from __future__ import annotations

import math

from repro.analysis.harmonic import harmonic_number
from repro.exceptions import AnalysisError


def expected_epidemic_time(population: int) -> float:
    """Lemma A.1: ``E[T] = (n-1)/n * H_{n-1}`` for a full-population epidemic."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    n = population
    return (n - 1) / n * harmonic_number(n - 1)


def epidemic_upper_tail(population: int, alpha_u: float) -> float:
    """Lemma A.1: ``Pr[T > alpha_u ln n] < 4 n^{-alpha_u/4 + 1}``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if alpha_u <= 0:
        raise AnalysisError(f"alpha_u must be positive, got {alpha_u}")
    return min(1.0, 4.0 * population ** (-alpha_u / 4.0 + 1.0))


def epidemic_lower_tail(population: int) -> float:
    """Lemma A.1: ``Pr[T < (1/4) ln n] < 2 e^{-sqrt n}``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 2.0 * math.exp(-math.sqrt(population)))


def subpopulation_epidemic_upper_tail(
    population: int, subpopulation_fraction: float, alpha_u: float
) -> float:
    """Corollary 3.4: tail for an epidemic among ``a = n / c`` agents.

    ``Pr[T > alpha_u ln a] < a^{-(alpha_u - 4c)^2 / (12 c)}``.

    Parameters
    ----------
    population:
        Total population ``n``.
    subpopulation_fraction:
        ``1/c``: the fraction of the population running the epidemic.
    alpha_u:
        The time multiplier in units of ``ln a``.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if not 0.0 < subpopulation_fraction <= 1.0:
        raise AnalysisError(
            f"subpopulation_fraction must be in (0, 1], got {subpopulation_fraction}"
        )
    c = 1.0 / subpopulation_fraction
    if alpha_u <= 4 * c:
        return 1.0
    a = population * subpopulation_fraction
    if a < 2:
        return 1.0
    exponent = (alpha_u - 4.0 * c) ** 2 / (12.0 * c)
    return min(1.0, a ** (-exponent))


def corollary_3_5_probability(population: int) -> float:
    """Corollary 3.5: epidemic among ``n/3`` agents exceeds ``24 ln n`` w.p. ``< 27 n^{-3}``."""
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 27.0 * population**-3.0)


def epidemic_time_bound(population: int, failure_probability: float = 1e-3) -> float:
    """Smallest ``alpha_u ln n`` budget with tail below ``failure_probability``.

    Convenience for sizing simulation budgets: inverts the Lemma A.1 tail
    ``4 n^{-alpha_u/4 + 1} <= failure_probability``.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if not 0.0 < failure_probability < 1.0:
        raise AnalysisError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    alpha_u = 4.0 * (1.0 + math.log(4.0 / failure_probability) / math.log(population))
    return alpha_u * math.log(population)
