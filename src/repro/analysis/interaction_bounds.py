"""Per-agent interaction-count concentration (Lemma 3.6, Corollary 3.7).

The leaderless phase clock works because, in any window of ``C ln n`` parallel
time, no agent has many more than its expected ``2 C ln n`` interactions.
Lemma 3.6 makes this quantitative: with ``D = 2C + sqrt(12 C)``, the
probability that some agent exceeds ``D ln n`` interactions in ``C ln n`` time
is at most ``1/n``.  Corollary 3.7 instantiates ``C = 24`` (the epidemic
budget of Corollary 3.5): at most ``65 ln n <= 94 log2 n`` interactions, hence
the protocol's threshold ``95 * logSize2``.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def expected_interactions(parallel_time: float) -> float:
    """Expected number of interactions of a fixed agent in ``parallel_time``.

    Each interaction involves a fixed agent with probability ``2/n`` and there
    are ``n * parallel_time`` interactions, so the expectation is
    ``2 * parallel_time`` regardless of ``n``.
    """
    if parallel_time < 0:
        raise AnalysisError(f"parallel_time must be non-negative, got {parallel_time}")
    return 2.0 * parallel_time


def interaction_count_upper_tail(
    population: int, time_factor: float, count_factor: float
) -> float:
    """Lemma 3.6-style bound on any agent exceeding ``count_factor * ln n`` interactions.

    During ``time_factor * ln n`` parallel time a fixed agent has
    ``Binomial(n * time_factor * ln n, 2/n)`` interactions with mean
    ``2 * time_factor * ln n``; the Chernoff bound with
    ``delta = count_factor / (2 time_factor) - 1`` and a union bound over the
    ``n`` agents give

    ``Pr[exists agent with >= count_factor ln n interactions]
    <= n * exp(-(count_factor - 2 time_factor)^2 ln n / (6 time_factor))``.

    Requires ``2 * time_factor < count_factor <= 4 * time_factor`` (so that
    ``0 < delta <= 1``, the range of the Chernoff form used in the paper).
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if time_factor <= 0:
        raise AnalysisError(f"time_factor must be positive, got {time_factor}")
    delta = count_factor / (2.0 * time_factor) - 1.0
    if not 0.0 < delta <= 1.0:
        raise AnalysisError(
            "count_factor must be in (2*time_factor, 4*time_factor] for this bound"
        )
    exponent = (
        (count_factor - 2.0 * time_factor) ** 2
        * math.log(population)
        / (6.0 * time_factor)
    )
    return min(1.0, population * math.exp(-exponent))


def interactions_upper_bound(time_factor: float) -> float:
    """Lemma 3.6's ``D = 2C + sqrt(12 C)``: interaction budget per ``C ln n`` time.

    Returns the coefficient ``D`` such that no agent exceeds ``D ln n``
    interactions in ``C ln n`` time except with probability ``1/n``.
    """
    if time_factor < 3:
        raise AnalysisError(
            f"the lemma requires C >= 3 (so delta <= 1), got {time_factor}"
        )
    return 2.0 * time_factor + math.sqrt(12.0 * time_factor)


def phase_clock_threshold(epidemic_time_factor: float = 24.0) -> float:
    """The protocol's phase-clock coefficient, in units of ``log2 n``.

    Corollary 3.7 with ``C = 24``: ``D = 2*24 + sqrt(12*24) ~ 65`` natural-log
    units, i.e. ``65 ln n <= 65 ln 2 * log2 n < 46 log2 n``... the paper
    rounds conservatively to ``94 log2 n`` and sets the threshold factor to
    95.  This function returns ``D * ln 2``-adjusted-to-``log2`` in the
    paper's conservative style: ``ceil(D / log2(e))`` is the tight value, and
    the returned number is ``D`` itself interpreted against ``log2 n`` (the
    paper's reading), so the default evaluates to ``~65``; the protocol's 95
    includes additional slack for the sub-population correction.
    """
    d = interactions_upper_bound(epidemic_time_factor)
    return d
