"""Maxima of geometric random variables (Appendix D.2 of the paper).

A ``p``-geometric random variable ``G`` is the number of flips up to and
including the first head of a ``p``-biased coin.  The protocol's central
quantity is ``M = max_{i<N} G_i`` for fair coins: its expectation is
``~ log2 N + 0.8`` (Eisenberg [28], Lemma D.4) and it concentrates within
``[log2 N - log2 ln N, 2 log2 N]`` w.h.p. (Lemma D.7), which is what makes the
maximum a weak estimate of ``log2 N`` and its average over ``K`` repetitions a
``O(1)``-additive estimate (Appendix D.3).

Functions here give the exact distribution (for validation), the Eisenberg
expectation bracket, and the tail bounds in the exact form the paper uses.
"""

from __future__ import annotations

import math

from repro.analysis.harmonic import EULER_MASCHERONI, harmonic_number
from repro.exceptions import AnalysisError

#: Constants of Lemma D.4 (Eisenberg's bracket).
EPSILON_1 = 0.01
EPSILON_2 = 0.0006


def _check_probability(p: float) -> None:
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"success probability must be in (0, 1), got {p}")


def geometric_pmf(value: int, p: float = 0.5) -> float:
    """``Pr[G = value]`` for a ``p``-geometric variable (support ``{1, 2, ...}``)."""
    _check_probability(p)
    if value < 1:
        return 0.0
    return (1.0 - p) ** (value - 1) * p


def maximum_cdf(threshold: float, population: int, p: float = 0.5) -> float:
    """``Pr[M <= threshold]`` for the maximum of ``population`` i.i.d. geometrics.

    Uses the exact product form ``(1 - q^floor(threshold))^N``.
    """
    _check_probability(p)
    if population < 1:
        raise AnalysisError(f"population must be positive, got {population}")
    if threshold < 1:
        return 0.0
    q = 1.0 - p
    return (1.0 - q ** math.floor(threshold)) ** population


def exact_expected_maximum(population: int, p: float = 0.5, terms: int = 200) -> float:
    """Exact ``E[M]`` via ``E[M] = sum_{t>=0} Pr[M > t]`` (truncated).

    The truncation error after ``terms`` terms is below
    ``population * q^terms``, negligible for the defaults.
    """
    _check_probability(p)
    if population < 1:
        raise AnalysisError(f"population must be positive, got {population}")
    q = 1.0 - p
    expectation = 0.0
    for t in range(terms):
        expectation += 1.0 - (1.0 - q**t) ** population
    return expectation


def expected_maximum_of_geometrics(
    population: int, p: float = 0.5
) -> tuple[float, float]:
    """Eisenberg's bracket on ``E[M]`` (Lemma D.4).

    Returns ``(lower, upper)`` with
    ``lower = (ln N + gamma)/ln(1/q) + 1/2 - eps2`` and
    ``upper = (ln N + gamma + eps1)/ln(1/q) + 1/2 + eps2``
    (``eps1 = 0.01`` accounts for ``H_N - ln N - gamma`` at ``N >= 50``); for
    fair coins this gives ``log2 N + 1 < E[M] < log2 N + 3/2`` for ``N >= 50``.
    """
    _check_probability(p)
    if population < 1:
        raise AnalysisError(f"population must be positive, got {population}")
    q = 1.0 - p
    rate = math.log(1.0 / q)
    base = math.log(population) + EULER_MASCHERONI
    lower = base / rate + 0.5 - EPSILON_2
    upper = (base + EPSILON_1) / rate + 0.5 + EPSILON_2
    return lower, upper


def maximum_upper_tail(deviation: float, p: float = 0.5) -> float:
    """Lemma D.5's bound on ``Pr[M - E[M] >= deviation]``.

    ``q^(d - 1/2 - eps2 - gamma ln q) + q^(2d - 1 - 2 eps2 - 2 gamma ln q)``.
    """
    _check_probability(p)
    if deviation < 0:
        raise AnalysisError(f"deviation must be non-negative, got {deviation}")
    q = 1.0 - p
    gamma_term = EULER_MASCHERONI * math.log(q)
    first = q ** (deviation - 0.5 - EPSILON_2 - gamma_term)
    second = q ** (2 * deviation - 1.0 - 2 * EPSILON_2 - 2 * gamma_term)
    return min(1.0, first + second)


def maximum_lower_tail(deviation: float, p: float = 0.5) -> float:
    """Lemma D.5's bound on ``Pr[E[M] - M >= deviation]``.

    ``exp(-q^(1/2 + eps2 - (gamma+1) ln q - deviation))``.
    """
    _check_probability(p)
    if deviation < 0:
        raise AnalysisError(f"deviation must be non-negative, got {deviation}")
    q = 1.0 - p
    exponent = 0.5 + EPSILON_2 - (EULER_MASCHERONI + 1.0) * math.log(q) - deviation
    return min(1.0, math.exp(-(q**exponent)))


def maximum_two_sided_tail(deviation: float, p: float = 0.5) -> float:
    """Corollary D.6: ``Pr[|M - E[M]| >= deviation] < 3.31 e^(-deviation/2)``.

    (Stated for fair coins; the function returns the fair-coin bound.)
    """
    if deviation < 0:
        raise AnalysisError(f"deviation must be non-negative, got {deviation}")
    return min(1.0, 3.31 * math.exp(-deviation / 2.0))


def maximum_in_range_probability(population: int) -> float:
    """Lemma D.7: probability that ``M`` *escapes* the likely range.

    ``Pr[M >= 2 log2 N] < 1/N`` and ``Pr[M <= log2 N - log2 ln N] < 1/N``;
    the function returns the union-bound failure probability ``2/N`` for the
    event ``M`` outside ``[log2 N - log2 ln N, 2 log2 N]``.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    return min(1.0, 2.0 / population)


def likely_maximum_range(population: int) -> tuple[float, float]:
    """The Lemma D.7 likely range ``[log2 N - log2 ln N, 2 log2 N]`` of ``M``."""
    if population < 3:
        raise AnalysisError(f"population must be at least 3, got {population}")
    lower = math.log2(population) - math.log2(math.log(population))
    upper = 2.0 * math.log2(population)
    return lower, upper


def expected_maximum_harmonic_form(population: int, p: float = 0.5) -> float:
    """Mid-point estimate ``H_N / ln(1/q) + 1/2`` of ``E[M]`` (Eisenberg).

    Useful as a single number (rather than the bracket) in reports.
    """
    _check_probability(p)
    return harmonic_number(population) / math.log(1.0 / (1.0 - p)) + 0.5
