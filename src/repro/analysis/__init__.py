"""Closed-form probability results used by the paper (Appendices A, D, E).

These modules implement, as ordinary numeric functions, the quantities the
paper's analysis manipulates:

* :mod:`repro.analysis.harmonic` — harmonic numbers and the Euler–Mascheroni
  constant (epidemic expectations are harmonic sums).
* :mod:`repro.analysis.geometric` — geometric random variables and their
  maxima: exact/approximate expectation (Eisenberg), tail bounds
  (Lemmas D.4, D.5, D.7, Corollary D.6).
* :mod:`repro.analysis.subexponential` — sub-exponential random variables and
  the Chernoff bound for sums of maxima of geometrics (Lemmas D.2, D.3, D.8,
  Corollaries D.9, D.10).
* :mod:`repro.analysis.epidemic_theory` — epidemic completion time
  (Lemma A.1) and the sub-population variant (Corollaries 3.4, 3.5).
* :mod:`repro.analysis.interaction_bounds` — per-agent interaction-count
  concentration (Lemma 3.6, Corollary 3.7), the basis of the leaderless
  phase clock.
* :mod:`repro.analysis.balls_and_bins` — the timer lemma
  (Lemmas E.1, E.2, Corollary E.3) behind the density argument of Theorem 4.1.
* :mod:`repro.analysis.error_bounds` — the protocol-level corollaries
  (Lemma 3.2, 3.8, 3.11, 3.12) assembled from the pieces above, yielding the
  paper's headline numbers (additive error 5.7 with probability ``>= 1-9/n``).

Every function is validated against Monte-Carlo simulation in the test suite,
so the library doubles as an executable check of the paper's constants.
"""

from repro.analysis.harmonic import euler_mascheroni, harmonic_number
from repro.analysis.geometric import (
    expected_maximum_of_geometrics,
    exact_expected_maximum,
    geometric_pmf,
    maximum_cdf,
    maximum_lower_tail,
    maximum_upper_tail,
    maximum_two_sided_tail,
    maximum_in_range_probability,
)
from repro.analysis.subexponential import (
    sub_exponential_mgf_bound,
    sum_of_maxima_tail,
    average_additive_error_probability,
    required_sample_count,
)
from repro.analysis.epidemic_theory import (
    expected_epidemic_time,
    epidemic_upper_tail,
    subpopulation_epidemic_upper_tail,
    epidemic_time_bound,
)
from repro.analysis.interaction_bounds import (
    expected_interactions,
    interaction_count_upper_tail,
    interactions_upper_bound,
    phase_clock_threshold,
)
from repro.analysis.balls_and_bins import (
    empty_bins_bound,
    state_depletion_bound,
    count_survival_bound,
)
from repro.analysis.error_bounds import (
    partition_deviation_probability,
    log_size2_range,
    log_size2_range_probability,
    final_error_probability,
    theorem_3_1_summary,
)

__all__ = [
    "euler_mascheroni",
    "harmonic_number",
    "expected_maximum_of_geometrics",
    "exact_expected_maximum",
    "geometric_pmf",
    "maximum_cdf",
    "maximum_lower_tail",
    "maximum_upper_tail",
    "maximum_two_sided_tail",
    "maximum_in_range_probability",
    "sub_exponential_mgf_bound",
    "sum_of_maxima_tail",
    "average_additive_error_probability",
    "required_sample_count",
    "expected_epidemic_time",
    "epidemic_upper_tail",
    "subpopulation_epidemic_upper_tail",
    "epidemic_time_bound",
    "expected_interactions",
    "interaction_count_upper_tail",
    "interactions_upper_bound",
    "phase_clock_threshold",
    "empty_bins_bound",
    "state_depletion_bound",
    "count_survival_bound",
    "partition_deviation_probability",
    "log_size2_range",
    "log_size2_range_probability",
    "final_error_probability",
    "theorem_3_1_summary",
]
