"""Balls-and-bins timer lemma (Appendix E: Lemmas E.1, E.2, Corollary E.3).

The impossibility proof (Theorem 4.1) rests on the fact that the count of any
state cannot *decrease* too fast: in one unit of parallel time each agent only
has a constant expected number of interactions, so a state occupying ``k``
agents still occupies ``Omega(k)`` agents a constant time later, w.h.p.  The
paper formalises this with a balls-and-bins argument:

* Lemma E.1 — throwing ``m`` balls into ``n`` bins of which ``k`` start empty
  leaves at most ``delta k`` empty bins with probability less than
  ``(2 delta e m / n)^{delta k}``;
* Lemma E.2 — the count of a state ``s`` starting at ``k`` stays above
  ``delta k`` for ``T`` time except with probability ``(2 delta e^{3T})^{delta k}``;
* Corollary E.3 — with ``delta = 1/81`` and ``T = 1``: the count does not drop
  below ``k/81`` within one unit of time except with probability ``2^{-k/81}``.

These bounds are what the empirical density experiments
(:mod:`repro.termination.density`) are checked against.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def empty_bins_bound(
    total_bins: int, initially_empty: int, balls_thrown: int, delta: float
) -> float:
    """Lemma E.1: ``Pr[<= delta k bins remain empty] < (2 delta e m / n)^{delta k}``.

    Parameters
    ----------
    total_bins:
        ``n``, the number of bins (agents).
    initially_empty:
        ``k``, the number of initially empty bins (agents in the tracked state).
    balls_thrown:
        ``m``, the number of balls thrown (agent-selections).
    delta:
        The survival fraction, in ``(0, 1/2]``.
    """
    if total_bins < 1 or initially_empty < 1 or balls_thrown < 0:
        raise AnalysisError("bins, empty bins and balls must be positive")
    if initially_empty > total_bins:
        raise AnalysisError("cannot have more empty bins than bins")
    if not 0.0 < delta <= 0.5:
        raise AnalysisError(f"delta must be in (0, 1/2], got {delta}")
    base = 2.0 * delta * math.e * balls_thrown / total_bins
    exponent = delta * initially_empty
    if base <= 0:
        return 0.0
    return min(1.0, base**exponent)


def state_depletion_bound(initial_count: int, delta: float, time: float) -> float:
    """Lemma E.2: ``Pr[exists t <= T with count <= delta k] <= (2 delta e^{3T})^{delta k}``."""
    if initial_count < 1:
        raise AnalysisError(f"initial_count must be positive, got {initial_count}")
    if not 0.0 < delta <= 0.5:
        raise AnalysisError(f"delta must be in (0, 1/2], got {delta}")
    if time < 0:
        raise AnalysisError(f"time must be non-negative, got {time}")
    base = 2.0 * delta * math.exp(3.0 * time)
    return min(1.0, base ** (delta * initial_count))


def count_survival_bound(initial_count: int) -> float:
    """Corollary E.3: probability the count drops below ``k/81`` within time 1.

    ``Pr[exists t in [0,1] with count <= k/81] <= 2^{-k/81}``.
    """
    if initial_count < 1:
        raise AnalysisError(f"initial_count must be positive, got {initial_count}")
    return min(1.0, 2.0 ** (-initial_count / 81.0))


def survival_fraction() -> float:
    """The fraction ``1/81`` used by Corollary E.3 (exported for experiments)."""
    return 1.0 / 81.0
