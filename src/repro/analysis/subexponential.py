"""Sub-exponential tail machinery (Appendix D.1 and D.3).

The protocol's output is an *average of K maxima of geometric variables*.
Standard Chernoff bounds for bounded variables do not apply (a maximum of
geometrics has exponential tails), so the paper uses the theory of
sub-exponential random variables:

* Lemma D.2 — an ``alpha``-``beta``-sub-exponential variable has
  ``E[e^{s(X-EX)}] <= 1 + 2 alpha beta^2 s^2`` for ``|s| <= 1/(2 beta)``;
* Lemma D.3 — a Chernoff bound for sums of such variables;
* Corollary D.6 — a maximum of fair-coin geometrics is 3.31–2-sub-exponential;
* Lemma D.8 / Corollaries D.9, D.10 — the resulting bound
  ``Pr[|sum - E sum| >= t] <= 2 e^{K - t/4}``, and the protocol-level
  consequence: averaging ``K >= 4 log2 N`` maxima estimates ``log2 N`` within
  additive error 4.7 except with probability ``2/N``.

These functions return the *bound values* (probabilities), which the tests
compare against Monte-Carlo estimates to confirm they are genuine upper
bounds and reasonably tight.
"""

from __future__ import annotations

import math

from repro.analysis.geometric import EPSILON_2
from repro.analysis.harmonic import EULER_MASCHERONI
from repro.exceptions import AnalysisError

#: Corollary D.6's sub-exponential parameters for a maximum of fair-coin
#: geometric variables.
MAXIMUM_ALPHA = 3.31
MAXIMUM_BETA = 2.0

#: Offset ``delta_0 = 1/2 + gamma/ln 2 - eps2`` of Corollary D.9 relating
#: ``E[M]`` to ``log2 N``.
DELTA_0 = 0.5 + EULER_MASCHERONI / math.log(2.0) - EPSILON_2


def sub_exponential_mgf_bound(
    s: float, alpha: float = MAXIMUM_ALPHA, beta: float = MAXIMUM_BETA
) -> float:
    """Lemma D.2's bound ``1 + 2 alpha beta^2 s^2`` on ``E[e^{s(X - EX)}]``.

    Only valid for ``|s| <= 1/(2 beta)``; a larger ``s`` raises.
    """
    if alpha <= 0 or beta <= 0:
        raise AnalysisError("alpha and beta must be positive")
    if abs(s) > 1.0 / (2.0 * beta):
        raise AnalysisError(
            f"s must satisfy |s| <= 1/(2 beta) = {1.0 / (2.0 * beta)}, got {s}"
        )
    return 1.0 + 2.0 * alpha * beta * beta * s * s


def sum_of_maxima_tail(sample_count: int, deviation: float) -> float:
    """Lemma D.8: ``Pr[|S - E[S]| >= t] <= 2 e^{K - t/4}``.

    ``S`` is the sum of ``sample_count`` i.i.d. maxima of (any number ``N >=
    50`` of) fair-coin geometric variables and ``deviation`` is ``t``.
    """
    if sample_count < 1:
        raise AnalysisError(f"sample_count must be positive, got {sample_count}")
    if deviation < 0:
        raise AnalysisError(f"deviation must be non-negative, got {deviation}")
    return min(1.0, 2.0 * math.exp(sample_count - deviation / 4.0))


def average_additive_error_probability(
    population: int, sample_count: int, additive_error: float
) -> float:
    """Corollary D.9: failure probability of the averaged estimate.

    ``Pr[|S/K - log2 N - delta_0| >= a] <= 2/N`` provided
    ``K >= ln N / (a/4 - 1)`` (with ``a > 4``); for smaller ``K`` the bound
    degrades gracefully to ``2 exp(-K (a/4 - 1))``.

    Parameters
    ----------
    population:
        ``N``, the number of geometric variables per maximum.
    sample_count:
        ``K``, the number of maxima averaged.
    additive_error:
        ``a``, the allowed deviation of the average from ``log2 N + delta_0``.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if sample_count < 1:
        raise AnalysisError(f"sample_count must be positive, got {sample_count}")
    if additive_error <= 4.0:
        # The Chernoff argument needs a/4 - 1 > 0; report a trivial bound.
        return 1.0
    exponent = sample_count * (additive_error / 4.0 - 1.0)
    return min(1.0, 2.0 * math.exp(-exponent))


def required_sample_count(population: int, additive_error: float = 4.7) -> int:
    """Corollary D.9/D.10: smallest ``K`` giving failure probability ``<= 2/N``.

    ``K >= ln N / (a/4 - 1)``; for the paper's choice ``a = ln 2 + 4 < 4.7``
    this evaluates to ``4 log2 N``, which is why the protocol runs
    ``K = 5 * logSize2 >= 4 log2 n`` epochs.
    """
    if population < 2:
        raise AnalysisError(f"population must be at least 2, got {population}")
    if additive_error <= 4.0:
        raise AnalysisError(
            f"additive_error must exceed 4 for the bound to apply, got {additive_error}"
        )
    return math.ceil(math.log(population) / (additive_error / 4.0 - 1.0))


def corollary_d10_probability(population: int, sample_count: int) -> float:
    """Corollary D.10: ``Pr[|S/K - log2 N| >= 4.7] <= 2/N`` for ``K >= 4 log2 N``.

    Returns ``2/N`` when the hypothesis on ``K`` holds, else the degraded
    bound from :func:`average_additive_error_probability`.
    """
    if sample_count >= 4 * math.log2(max(2, population)):
        return min(1.0, 2.0 / population)
    return average_additive_error_probability(population, sample_count, 4.7 + 0.0)
