"""Appendix B: size estimation with no access to random bits (synthetic coins).

The main protocol assumes agents can read uniformly random bits.  Appendix B
removes that assumption: the population splits into worker (``A``) and
coin-flipper (``F``) roles, and whenever an ``A`` agent interacts with an
``F`` agent, whether the ``A`` agent happened to be the *sender* or the
*receiver* is a perfectly fair, independent coin flip supplied by the
scheduler itself (the *synthetic coin* of Sudo et al. [39]).

Workers therefore generate their geometric variables *incrementally*: the
variable keeps incrementing while the flips come up "sender" and completes on
the first "receiver" flip (Subprotocols 12 and 15).  Because every worker
stores its own running sum of per-epoch maxima (there are no storage agents in
this variant), the state bound grows to ``O(log^6 n)`` (Lemma B.5), while the
time bound remains ``O(log^2 n)`` (Corollary B.6).

The structure per epoch is otherwise the same as the main protocol: leaderless
phase clock with threshold ``clock_threshold_factor * logSize2``, max
propagation of ``gr`` among workers in the same epoch, catch-up via
``Propagate-Incremented-Epoch``, restart on a larger ``logSize2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable

from repro.core.parameters import ProtocolParameters
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


class CoinRole(str, Enum):
    """Roles of the Appendix-B variant."""

    UNASSIGNED = "X"
    WORKER = "A"
    COIN = "F"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class SyntheticCoinState:
    """State of one agent of the Appendix-B protocol (Protocol 10)."""

    role: CoinRole = CoinRole.UNASSIGNED
    time: int = 0
    total: int = 0
    epoch: int = 0
    gr: int = 1
    log_size2: int = 1
    log_size2_generated: bool = False
    gr_generated: bool = False
    protocol_done: bool = False
    output: float | None = None

    def clone(self) -> "SyntheticCoinState":
        return SyntheticCoinState(
            role=self.role,
            time=self.time,
            total=self.total,
            epoch=self.epoch,
            gr=self.gr,
            log_size2=self.log_size2,
            log_size2_generated=self.log_size2_generated,
            gr_generated=self.gr_generated,
            protocol_done=self.protocol_done,
            output=self.output,
        )

    def signature(self) -> Hashable:
        return (
            self.role.value,
            self.time,
            self.total,
            self.epoch,
            self.gr,
            self.log_size2,
            self.log_size2_generated,
            self.gr_generated,
            self.protocol_done,
            self.output,
        )

    @property
    def is_worker(self) -> bool:
        return self.role is CoinRole.WORKER

    @property
    def is_coin(self) -> bool:
        return self.role is CoinRole.COIN

    @property
    def is_unassigned(self) -> bool:
        return self.role is CoinRole.UNASSIGNED


class SyntheticCoinLogSizeEstimation(AgentProtocol[SyntheticCoinState]):
    """Protocol 10: ``Log-Size-Estimation`` with synthetic coins (Appendix B).

    The transition function is deterministic given the ordered pair — all
    randomness comes from which participant the scheduler made the sender —
    so the protocol fits the traditional deterministic-transition model.

    Parameters
    ----------
    params:
        The same constants as the main protocol; the geometric success
        probability is necessarily 1/2 here (one synthetic flip per A–F
        interaction).
    """

    is_uniform = True

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params or ProtocolParameters.paper()

    # -- helpers ---------------------------------------------------------------

    def _restart(self, agent: SyntheticCoinState) -> None:
        """Subprotocol 14: reset everything downstream of ``logSize2``."""
        agent.time = 0
        agent.total = 0
        agent.epoch = 0
        agent.gr = 1
        agent.gr_generated = False
        agent.protocol_done = False
        agent.output = None

    def _update_sum(self, agent: SyntheticCoinState) -> None:
        """Subprotocol 19: accumulate ``gr`` and start the next epoch's variable."""
        agent.total += agent.gr
        agent.time = 0
        agent.gr = 1
        agent.gr_generated = False

    def _check_timer(self, agent: SyntheticCoinState) -> None:
        """Subprotocol 17: advance the epoch when the phase clock expires."""
        if agent.protocol_done or not agent.is_worker:
            return
        if not agent.log_size2_generated or not agent.gr_generated:
            return
        if agent.time < self.params.clock_threshold(agent.log_size2):
            return
        agent.epoch += 1
        self._update_sum(agent)
        self._maybe_finish(agent)

    def _maybe_finish(self, agent: SyntheticCoinState) -> None:
        if (
            not agent.protocol_done
            and agent.epoch >= self.params.total_epochs(agent.log_size2)
            and agent.epoch > 0
        ):
            agent.protocol_done = True
        if agent.protocol_done and agent.epoch > 0:
            agent.output = agent.total / agent.epoch + self.params.output_offset

    def _partition(self, rec: SyntheticCoinState, sen: SyntheticCoinState) -> None:
        """Subprotocol 11: split the population into workers and coin flippers."""
        if sen.is_unassigned and rec.is_unassigned:
            sen.role = CoinRole.WORKER
            rec.role = CoinRole.COIN
            return
        if rec.is_unassigned and not sen.is_unassigned:
            rec.role = CoinRole.COIN if sen.is_worker else CoinRole.WORKER
            return
        if sen.is_unassigned and not rec.is_unassigned:
            sen.role = CoinRole.COIN if rec.is_worker else CoinRole.WORKER

    def _generate(self, worker: SyntheticCoinState, worker_is_sender: bool) -> None:
        """Subprotocols 12 and 15: one synthetic coin flip for the worker.

        "Sender" flips keep incrementing the variable being generated;
        the first "receiver" flip completes it.
        """
        if not worker.log_size2_generated:
            if worker_is_sender:
                worker.log_size2 += 1
            else:
                worker.log_size2_generated = True
                worker.log_size2 += self.params.log_size2_offset
            return
        if not worker.gr_generated:
            if worker_is_sender:
                worker.gr += 1
            else:
                worker.gr_generated = True

    def _propagate_log_size2(
        self, first: SyntheticCoinState, second: SyntheticCoinState
    ) -> None:
        """Subprotocol 13: spread the maximum ``logSize2``; growth restarts."""
        if not (first.log_size2_generated and second.log_size2_generated):
            return
        if first.log_size2 < second.log_size2:
            first.log_size2 = second.log_size2
            self._restart(first)
        elif second.log_size2 < first.log_size2:
            second.log_size2 = first.log_size2
            self._restart(second)

    def _propagate_epoch(
        self, first: SyntheticCoinState, second: SyntheticCoinState
    ) -> None:
        """Subprotocol 18: lagging workers catch up to the maximum epoch."""
        if first.epoch < second.epoch:
            first.epoch = second.epoch
            self._update_sum(first)
            self._maybe_finish(first)
        elif second.epoch < first.epoch:
            second.epoch = first.epoch
            self._update_sum(second)
            self._maybe_finish(second)

    def _propagate_gr(
        self, first: SyntheticCoinState, second: SyntheticCoinState
    ) -> None:
        """Subprotocol 16: spread the epoch's maximum geometric variable."""
        if first.epoch != second.epoch:
            return
        if first.gr < second.gr:
            first.gr = second.gr
        elif second.gr < first.gr:
            second.gr = first.gr

    def _propagate_output(
        self, first: SyntheticCoinState, second: SyntheticCoinState
    ) -> None:
        """Spread the final estimate (including to coin-flipper agents)."""
        for announcer, listener in ((first, second), (second, first)):
            if announcer.output is None:
                continue
            if listener.protocol_done and listener.output is not None:
                continue
            if listener.output is None or announcer.protocol_done:
                listener.output = announcer.output

    # -- AgentProtocol interface --------------------------------------------------

    def initial_state(self, agent_id: int) -> SyntheticCoinState:
        return SyntheticCoinState()

    def transition(
        self,
        receiver: SyntheticCoinState,
        sender: SyntheticCoinState,
        rng: RandomSource,
    ) -> tuple[SyntheticCoinState, SyntheticCoinState]:
        rec = receiver.clone()
        sen = sender.clone()

        self._partition(rec, sen)

        # Leaderless phase clock (workers count every interaction).
        if rec.is_worker:
            rec.time += 1
            self._check_timer(rec)
        if sen.is_worker:
            sen.time += 1
            self._check_timer(sen)

        # Synthetic coin flips happen on worker/coin-flipper pairs.
        if rec.is_worker and sen.is_coin:
            self._generate(rec, worker_is_sender=False)
        elif sen.is_worker and rec.is_coin:
            self._generate(sen, worker_is_sender=True)

        # Worker-worker bookkeeping (only once their variables exist).
        if rec.is_worker and sen.is_worker:
            self._propagate_log_size2(rec, sen)
            if rec.gr_generated and sen.gr_generated:
                self._propagate_epoch(rec, sen)
                self._propagate_gr(rec, sen)

        self._propagate_output(rec, sen)
        return rec, sen

    def output(self, state: SyntheticCoinState) -> float | None:
        """The agent's current estimate of ``log2 n`` (``None`` until available)."""
        return state.output

    def state_signature(self, state: SyntheticCoinState) -> Hashable:
        return state.signature()

    def describe(self) -> str:
        return f"SyntheticCoinLogSizeEstimation({self.params.describe()})"


# -- predicates ----------------------------------------------------------------------


def all_workers_done(simulation) -> bool:
    """Every worker agent has finished all its epochs."""
    workers = [state for state in simulation.states if state.is_worker]
    return bool(workers) and all(state.protocol_done for state in workers)


def all_agents_report(simulation) -> bool:
    """Every agent (including coin flippers) reports an estimate."""
    return all(state.output is not None for state in simulation.states)
