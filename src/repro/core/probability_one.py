"""Probability-1 upper bound on ``log2 n`` (Section 3.3).

The main protocol can err in either direction with small probability.  For
applications that only need an *upper bound* on ``log n`` (being too large
merely slows things down), Section 3.3 combines two ingredients:

* the fast protocol's estimate ``k`` shifted up by a slack constant
  (``upper_bound_slack``, the paper's ``+3.7``), which is an upper bound
  w.h.p.; and
* the slow, error-free backup protocol
  :class:`~repro.protocols.exact_backup.ExactUpperBoundBackup`
  (``l_i, l_i -> l_{i+1}, f_{i+1}``), whose maximum level stabilises to
  ``floor(log2 n)`` with probability 1 after ``O(n)`` time.

Reporting ``max(k + slack, k_ex + 1)`` at every moment gives a value that is
an upper bound on ``log2 n`` with probability 1 once the backup has
stabilised, while remaining within ``O(1)`` above ``log2 n`` w.h.p. (the
paper's constant is ``5.7 + 3.7 = 9.4``).  The fast estimate converges in
``O(log^2 n)`` time, so the expected convergence time of the combination is
still dominated by the fast path.

(The ``+ 1`` on the backup level is discussed in
:mod:`repro.protocols.exact_backup`: pairwise merging stabilises at
``floor(log2 n)``, so one unit of slack is needed for a true upper bound.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.fields import LogSizeAgentState
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.protocols.base import AgentProtocol
from repro.protocols.exact_backup import BackupState, ExactUpperBoundBackup
from repro.rng import RandomSource


@dataclass(slots=True)
class ProbabilityOneState:
    """Combined state: fast estimate plus the slow exact backup."""

    fast: LogSizeAgentState
    backup: BackupState

    def clone(self) -> "ProbabilityOneState":
        return ProbabilityOneState(fast=self.fast.clone(), backup=self.backup)


class ProbabilityOneUpperBoundProtocol(AgentProtocol[ProbabilityOneState]):
    """Uniform leaderless protocol whose output is an upper bound on ``log2 n``.

    Parameters
    ----------
    params:
        Constants of the fast size-estimation protocol.
    upper_bound_slack:
        Additive slack added to the fast estimate (paper: 3.7), making it an
        upper bound w.h.p. on its own.
    """

    is_uniform = True

    def __init__(
        self,
        params: ProtocolParameters | None = None,
        upper_bound_slack: float = 3.7,
    ) -> None:
        if upper_bound_slack < 0:
            raise ValueError(
                f"upper_bound_slack must be non-negative, got {upper_bound_slack}"
            )
        self.params = params or ProtocolParameters.paper()
        self.fast_protocol = LogSizeEstimationProtocol(self.params)
        self.backup_protocol = ExactUpperBoundBackup()
        self.upper_bound_slack = upper_bound_slack

    def initial_state(self, agent_id: int) -> ProbabilityOneState:
        return ProbabilityOneState(
            fast=self.fast_protocol.initial_state(agent_id),
            backup=self.backup_protocol.initial_state(agent_id),
        )

    def transition(
        self,
        receiver: ProbabilityOneState,
        sender: ProbabilityOneState,
        rng: RandomSource,
    ) -> tuple[ProbabilityOneState, ProbabilityOneState]:
        rec = receiver.clone()
        sen = sender.clone()
        rec.fast, sen.fast = self.fast_protocol.transition(rec.fast, sen.fast, rng)
        rec.backup, sen.backup = self.backup_protocol.transition(
            rec.backup, sen.backup, rng
        )
        return rec, sen

    def output(self, state: ProbabilityOneState) -> float:
        """The guaranteed upper bound ``max(k + slack, k_ex + 1)``.

        Unlike the plain protocol this is always defined: before the fast
        estimate is available the backup level (plus one) alone is reported.
        """
        backup_bound = float(self.backup_protocol.output(state.backup) + 1)
        fast_estimate = self.fast_protocol.output(state.fast)
        if fast_estimate is None:
            return backup_bound
        return max(fast_estimate + self.upper_bound_slack, backup_bound)

    def fast_output(self, state: ProbabilityOneState) -> float | None:
        """The underlying fast estimate (no slack), for diagnostics."""
        return self.fast_protocol.output(state.fast)

    def backup_output(self, state: ProbabilityOneState) -> int:
        """The backup protocol's current level, for diagnostics."""
        return self.backup_protocol.output(state.backup)

    def state_signature(self, state: ProbabilityOneState) -> Hashable:
        return (state.fast.signature(), state.backup)

    def describe(self) -> str:
        return (
            f"ProbabilityOneUpperBound(slack={self.upper_bound_slack}, "
            f"{self.params.describe()})"
        )


def upper_bound_holds(simulation) -> bool:
    """Predicate: every agent's reported value is ``>= log2 n``.

    With probability 1 this eventually holds forever (once the backup
    stabilises); the benchmarks measure how often it already holds at fast
    convergence.
    """
    import math

    target = math.log2(simulation.population_size)
    return all(
        simulation.protocol.output(state) >= target for state in simulation.states
    )
