"""Phase clocks: leaderless (this paper) and leader-driven (Angluin et al.).

A *phase clock* lets a population synchronise epochs of ``Theta(log n)``
parallel time.  Two flavours appear in the paper:

:class:`LeaderlessPhaseClock`
    The paper's clock (Section 3.1): every agent simply counts its own
    interactions and compares the count against a threshold
    ``clock_factor * s`` where ``s`` is the weak size estimate (``logSize2``).
    Lemma 3.6 / Corollary 3.7 show that in the ``~24 ln n`` time an epidemic
    needs, no agent has more than ``~94 log n`` interactions w.h.p., so a
    threshold of ``95 * logSize2`` guarantees (w.h.p.) that no agent finishes
    an epoch before the epoch's epidemic has completed.  This object is the
    reusable form of that counter, used by the composition scheme of
    Section 1.1 (count to ``f(s)``, signal the next stage).

:class:`LeaderDrivenPhaseClock`
    The classic phase clock of Angluin, Aspnes and Eisenstat [9], needed for
    the terminating-with-a-leader variant (Theorem 3.13).  Agents carry a
    phase in ``0 .. phase_count-1``; followers adopt the leader-side maximum
    (in the cyclic order), and the leader increments the phase when it meets
    an agent that has caught up with it.  Each wrap of the clock takes
    ``Theta(log n)`` time w.h.p.

Both classes are plain state machines over per-agent values, so they can be
embedded in any agent-level protocol (they carry no randomness of their own).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProtocolError


@dataclass(frozen=True, slots=True)
class LeaderlessPhaseClock:
    """Interaction-counting phase clock parameterised by a size estimate.

    Parameters
    ----------
    clock_factor:
        The threshold is ``clock_factor * size_estimate`` interactions
        (the paper uses 95 for its own epochs; the composition scheme picks
        the factor from the downstream protocol's convergence time).
    size_estimate:
        The weak estimate ``s`` of ``log2 n`` (``logSize2``), at least 1.
    """

    clock_factor: int
    size_estimate: int

    def __post_init__(self) -> None:
        if self.clock_factor < 1:
            raise ProtocolError(f"clock_factor must be >= 1, got {self.clock_factor}")
        if self.size_estimate < 1:
            raise ProtocolError(
                f"size_estimate must be >= 1, got {self.size_estimate}"
            )

    @property
    def threshold(self) -> int:
        """Number of interactions after which the clock fires."""
        return self.clock_factor * self.size_estimate

    def expired(self, interaction_count: int) -> bool:
        """Whether a counter value means the current epoch has ended."""
        return interaction_count >= self.threshold

    def with_estimate(self, size_estimate: int) -> "LeaderlessPhaseClock":
        """Return a clock with an updated size estimate (after a restart)."""
        return LeaderlessPhaseClock(
            clock_factor=self.clock_factor, size_estimate=size_estimate
        )


@dataclass(frozen=True, slots=True)
class PhaseClockAgent:
    """Per-agent state of the leader-driven phase clock.

    Attributes
    ----------
    phase:
        Current phase in ``0 .. phase_count - 1``.
    round:
        Number of completed clock wraps (each wrap is one "round" of
        ``Theta(log n)`` time).
    """

    phase: int = 0
    round: int = 0


class LeaderDrivenPhaseClock:
    """The Angluin–Aspnes–Eisenstat leader-driven phase clock.

    The clock is defined by its number of phases (the paper's Theorem 3.13
    uses "greater than 288" so that a full wrap takes at least ``36 ln n``
    time w.h.p.; smaller values still work, just with weaker guarantees, and
    the tests use small values for speed).

    Usage: the embedding protocol stores a :class:`PhaseClockAgent` per agent
    and calls :meth:`interact` with the leader flag of each participant; the
    method returns the updated pair.
    """

    def __init__(self, phase_count: int = 289) -> None:
        if phase_count < 3:
            raise ProtocolError(f"phase_count must be at least 3, got {phase_count}")
        self.phase_count = phase_count

    # -- cyclic-order helpers -----------------------------------------------------

    def _ahead(self, a: PhaseClockAgent, b: PhaseClockAgent) -> bool:
        """Whether agent ``a``'s clock reading is strictly ahead of ``b``'s.

        Readings are compared by (round, phase); the round counter removes the
        ambiguity of the purely cyclic comparison used in the original paper
        (it is information the agents legitimately maintain locally).
        """
        return (a.round, a.phase) > (b.round, b.phase)

    def _advance(self, agent: PhaseClockAgent) -> PhaseClockAgent:
        phase = agent.phase + 1
        if phase >= self.phase_count:
            return PhaseClockAgent(phase=0, round=agent.round + 1)
        return PhaseClockAgent(phase=phase, round=agent.round)

    # -- transition ----------------------------------------------------------------

    def interact(
        self,
        receiver: PhaseClockAgent,
        receiver_is_leader: bool,
        sender: PhaseClockAgent,
        sender_is_leader: bool,
    ) -> tuple[PhaseClockAgent, PhaseClockAgent]:
        """Update both participants' clocks for one interaction.

        Followers adopt the later reading; the leader advances its phase when
        it meets an agent that has caught up with it (same reading), which is
        what makes each full wrap take ``Theta(log n)`` time.
        """
        new_receiver, new_sender = receiver, sender

        # Followers catch up to the maximum reading they observe.
        if not receiver_is_leader and self._ahead(sender, receiver):
            new_receiver = PhaseClockAgent(phase=sender.phase, round=sender.round)
        if not sender_is_leader and self._ahead(receiver, sender):
            new_sender = PhaseClockAgent(phase=receiver.phase, round=receiver.round)

        # The leader ticks when met by an agent that caught up with it.
        if receiver_is_leader and not self._ahead(receiver, sender):
            new_receiver = self._advance(receiver)
        if sender_is_leader and not self._ahead(sender, receiver):
            new_sender = self._advance(sender)

        return new_receiver, new_sender

    def rounds_completed(self, agent: PhaseClockAgent) -> int:
        """Number of full clock wraps the agent has observed."""
        return agent.round
