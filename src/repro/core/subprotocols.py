"""Subroutines of Protocol 1, mirroring the paper's pseudocode.

Each function below corresponds to one named subprotocol of Section 3.2 and
mutates the :class:`~repro.core.fields.LogSizeAgentState` objects it is given
(the top-level protocol passes clones, so the engine's inputs are never
touched).  The mapping is:

=========================================  =======================================
Paper subprotocol                            Function
=========================================  =======================================
``Partition-Into-A/S`` (Subprotocol 2)       :func:`partition_into_roles`
``Propagate-Max-Clock-Value`` (3)            :func:`propagate_max_clock_value`
``Restart`` (4)                              :func:`restart`
``Propagate-Max-G.R.V.`` (5)                 :func:`propagate_max_grv`
``Check-if-Timer-Done-...`` (6)              :func:`check_timer_and_increment_epoch`
``Propagate-Incremented-Epoch`` (7)          :func:`propagate_incremented_epoch`
``Move-to-Next-G.R.V`` (8)                   :func:`move_to_next_grv`
``Update-Sum`` (9)                           :func:`update_sum`
=========================================  =======================================

Interpretation choices (documented in ``DESIGN.md``): the timer test uses
``>=`` rather than ``==``; ``Restart`` clears ``updated_sum``; S–S propagation
at equal epochs takes the maximum ``sum``; role assignment is symmetric in
which participant is still unassigned.
"""

from __future__ import annotations

from repro.core.fields import LogSizeAgentState, Role
from repro.core.parameters import ProtocolParameters
from repro.rng import RandomSource


def draw_log_size2(rng: RandomSource, params: ProtocolParameters) -> int:
    """Draw a fresh ``logSize2`` value (geometric variable plus the +2 shift)."""
    return rng.geometric(params.geometric_success_probability) + params.log_size2_offset


def draw_gr(rng: RandomSource, params: ProtocolParameters) -> int:
    """Draw a fresh per-epoch geometric variable ``gr``."""
    return rng.geometric(params.geometric_success_probability)


def partition_into_roles(
    receiver: LogSizeAgentState,
    sender: LogSizeAgentState,
    rng: RandomSource,
    params: ProtocolParameters,
) -> None:
    """``Partition-Into-A/S``: split the population into workers and storage.

    Two unassigned agents split into one worker (the sender) and one storage
    agent (the receiver).  An unassigned agent meeting an already-assigned
    agent takes the *opposite* role, which keeps the two sub-populations
    balanced (Lemma 3.2) while converging in ``O(log n)`` time.
    A fresh worker immediately generates its ``logSize2`` variable.
    """
    if sender.is_unassigned and receiver.is_unassigned:
        sender.role = Role.WORKER
        sender.log_size2 = draw_log_size2(rng, params)
        receiver.role = Role.STORAGE
        return
    if receiver.is_unassigned and not sender.is_unassigned:
        if sender.is_worker:
            receiver.role = Role.STORAGE
        else:
            receiver.role = Role.WORKER
            receiver.log_size2 = draw_log_size2(rng, params)
        return
    if sender.is_unassigned and not receiver.is_unassigned:
        if receiver.is_worker:
            sender.role = Role.STORAGE
        else:
            sender.role = Role.WORKER
            sender.log_size2 = draw_log_size2(rng, params)


def restart(
    agent: LogSizeAgentState, rng: RandomSource, params: ProtocolParameters
) -> None:
    """``Restart``: reset everything downstream of ``logSize2``.

    Called whenever the agent learns a strictly larger ``logSize2``: the whole
    computation so far was based on a too-small estimate, so the epoch
    structure, the accumulated sum, the phase-clock counter and the output are
    discarded and a fresh geometric variable is drawn for the current epoch.
    """
    agent.time = 0
    agent.total = 0
    agent.epoch = 0
    agent.gr = draw_gr(rng, params)
    agent.protocol_done = False
    agent.updated_sum = False
    agent.output = None


def propagate_max_clock_value(
    first: LogSizeAgentState,
    second: LogSizeAgentState,
    rng: RandomSource,
    params: ProtocolParameters,
) -> None:
    """``Propagate-Max-Clock-Value``: spread the maximum ``logSize2`` by epidemic.

    The agent holding the smaller value adopts the larger one and restarts its
    downstream computation.
    """
    if first.log_size2 < second.log_size2:
        first.log_size2 = second.log_size2
        restart(first, rng, params)
    elif second.log_size2 < first.log_size2:
        second.log_size2 = first.log_size2
        restart(second, rng, params)


def propagate_max_grv(first: LogSizeAgentState, second: LogSizeAgentState) -> None:
    """``Propagate-Max-G.R.V.``: spread the epoch's maximum geometric variable.

    Only meaningful between two worker agents in the *same* epoch; agents in
    different epochs are generating different variables.
    """
    if first.epoch != second.epoch:
        return
    if first.gr < second.gr:
        first.gr = second.gr
    elif second.gr < first.gr:
        second.gr = first.gr


def move_to_next_grv(
    agent: LogSizeAgentState, rng: RandomSource, params: ProtocolParameters
) -> None:
    """``Move-to-Next-G.R.V``: begin a fresh epoch for this worker agent."""
    agent.time = 0
    agent.gr = draw_gr(rng, params)
    agent.updated_sum = False


def check_timer_and_increment_epoch(
    agent: LogSizeAgentState, rng: RandomSource, params: ProtocolParameters
) -> None:
    """``Check-if-Timer-Done-and-Increment-Epoch``.

    A worker whose phase-clock counter has reached the threshold *and* whose
    epoch maximum has already been deposited into an ``S`` agent moves to the
    next epoch; after the last epoch it sets ``protocolDone``.
    """
    if agent.protocol_done or not agent.is_worker:
        return
    if agent.time < params.clock_threshold(agent.log_size2):
        return
    if not agent.updated_sum:
        return
    agent.epoch += 1
    move_to_next_grv(agent, rng, params)
    if agent.epoch >= params.total_epochs(agent.log_size2):
        agent.protocol_done = True


def propagate_incremented_epoch(
    first: LogSizeAgentState,
    second: LogSizeAgentState,
    rng: RandomSource,
    params: ProtocolParameters,
) -> None:
    """``Propagate-Incremented-Epoch``: lagging agents catch up to the max epoch.

    Between two workers, the lagging one jumps to the larger epoch and starts
    a fresh geometric variable (its own maximum for the skipped epoch was
    already deposited by some other worker).  Between two storage agents, the
    lagging one adopts both the larger epoch and the associated sum; at equal
    epochs the storage agents agree on the maximum sum, which is what makes
    every agent converge to a common output value.
    """
    if first.is_worker and second.is_worker:
        if first.epoch < second.epoch:
            first.epoch = second.epoch
            move_to_next_grv(first, rng, params)
            _maybe_finish_worker(first, params)
        elif second.epoch < first.epoch:
            second.epoch = first.epoch
            move_to_next_grv(second, rng, params)
            _maybe_finish_worker(second, params)
        return
    if first.is_storage and second.is_storage:
        if first.epoch < second.epoch:
            first.epoch = second.epoch
            first.total = second.total
        elif second.epoch < first.epoch:
            second.epoch = first.epoch
            second.total = first.total
        else:
            maximum = max(first.total, second.total)
            first.total = maximum
            second.total = maximum
        _maybe_finish_storage(first, params)
        _maybe_finish_storage(second, params)


def _maybe_finish_worker(agent: LogSizeAgentState, params: ProtocolParameters) -> None:
    """Mark a worker done when it has caught up to (or past) the final epoch."""
    if agent.epoch >= params.total_epochs(agent.log_size2):
        agent.protocol_done = True


def _maybe_finish_storage(agent: LogSizeAgentState, params: ProtocolParameters) -> None:
    """Mark a storage agent done when it has accumulated all epoch maxima.

    A finished storage agent's announced estimate is ``total / epoch + 1``
    (Protocol 1's ``output <- sum/epoch + 1``).  The estimate is refreshed
    whenever the stored sum changes (storage agents keep agreeing on the
    maximum sum), so all announcements converge to a single common value.
    """
    if not agent.is_storage:
        return
    if (
        not agent.protocol_done
        and agent.epoch >= params.total_epochs(agent.log_size2)
        and agent.epoch > 0
    ):
        agent.protocol_done = True
    if agent.protocol_done and agent.epoch > 0:
        agent.output = agent.total / agent.epoch + params.output_offset


def update_sum(
    first: LogSizeAgentState,
    second: LogSizeAgentState,
    params: ProtocolParameters,
) -> None:
    """``Update-Sum``: a finished worker deposits its epoch maximum into storage.

    Requires exactly one worker and one storage agent.  If the worker's phase
    clock has expired and both agents are in the same epoch, the storage agent
    accumulates the worker's ``gr`` and advances its epoch; the worker marks
    the deposit so its own epoch may advance at its next check.  If the
    storage agent is already ahead, the worker's maximum for this epoch was
    deposited by another worker, so the worker just marks the deposit.
    """
    if first.is_worker and second.is_storage:
        worker, storage = first, second
    elif second.is_worker and first.is_storage:
        worker, storage = second, first
    else:
        return
    if worker.protocol_done:
        return
    if (
        worker.epoch == storage.epoch
        and worker.time >= params.clock_threshold(worker.log_size2)
    ):
        storage.epoch += 1
        storage.total += worker.gr
        worker.updated_sum = True
        _maybe_finish_storage(storage, params)
    elif worker.epoch < storage.epoch:
        worker.updated_sum = True


def propagate_output(first: LogSizeAgentState, second: LogSizeAgentState) -> None:
    """Spread the final estimate to every agent.

    A finished storage agent announces its (possibly refined) estimate and its
    partner overwrites its stored output with it; between other agents the
    output spreads epidemically to agents that have none yet.  Because storage
    agents keep agreeing on the maximum sum (so their announcements converge
    to a single value) and those announcements overwrite stale copies, all
    agents converge to a common output value — the probability-1 convergence
    of Lemma 3.12.
    """
    for announcer, listener in ((first, second), (second, first)):
        if announcer.output is None:
            continue
        if listener.is_storage and listener.protocol_done:
            # A finished storage agent keeps its own (authoritative) estimate.
            continue
        if announcer.is_storage and announcer.protocol_done:
            # Authoritative announcements always overwrite.
            listener.output = announcer.output
        elif listener.output is None:
            # Second-hand copies only fill empty slots; they never overwrite.
            listener.output = announcer.output
