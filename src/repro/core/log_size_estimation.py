"""Protocol 1: uniform leaderless ``Log-Size-Estimation`` (Theorem 3.1).

The protocol computes ``log2 n`` within a constant additive error, with high
probability, in ``O(log^2 n)`` parallel time and ``O(log^4 n)`` states, from
the all-identical initial configuration (no leader, no knowledge of ``n``).

Outline (Section 3.1/3.2 of the paper):

1. **Partition.**  Agents split into workers (``A``) and storage (``S``)
   roles, roughly half each (Lemma 3.2).
2. **Weak estimate.**  Each worker draws a geometric random variable;
   the population propagates the maximum (``logSize2``), a 2-factor estimate
   of ``log2 n`` (Lemma 3.8).  Whenever a larger value arrives, the agent
   restarts everything downstream (the restart scheme).
3. **Leaderless phase clock.**  Workers count their own interactions; an
   epoch lasts ``95 * logSize2`` of them, long enough for one epidemic to
   complete w.h.p. (Corollaries 3.5–3.7).
4. **Averaging.**  In each of ``K = 5 * logSize2`` epochs the workers draw a
   fresh geometric variable, propagate its maximum, and deposit it into the
   storage agents' running sum.  The final output is
   ``sum / K + 1 ~ log2(n/2) + 1 = log2 n`` within additive error 5.7 w.h.p.
   (Lemma 3.11/3.12, Corollary D.10).

This module provides the agent-level protocol class plus the convergence
predicates used by tests, benchmarks and the Figure 2 reproduction.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.fields import LogSizeAgentState, Role
from repro.core.parameters import ProtocolParameters
from repro.core import subprotocols as sub
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


class LogSizeEstimationProtocol(AgentProtocol[LogSizeAgentState]):
    """The paper's main protocol (Protocol 1).

    Parameters
    ----------
    params:
        The protocol constants; defaults to the paper's values
        (:meth:`ProtocolParameters.paper`).  Tests use
        :meth:`ProtocolParameters.fast_test` for speed.
    """

    is_uniform = True

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params or ProtocolParameters.paper()

    # -- AgentProtocol interface ---------------------------------------------------

    def initial_state(self, agent_id: int) -> LogSizeAgentState:
        """All agents start identically (leaderless, role ``X``)."""
        return LogSizeAgentState()

    def transition(
        self,
        receiver: LogSizeAgentState,
        sender: LogSizeAgentState,
        rng: RandomSource,
    ) -> tuple[LogSizeAgentState, LogSizeAgentState]:
        """One interaction of Protocol 1 (pseudocode order preserved)."""
        rec = receiver.clone()
        sen = sender.clone()
        params = self.params

        # 1. Role assignment for agents still unassigned.
        sub.partition_into_roles(rec, sen, rng, params)

        # 2. Workers tick their leaderless phase clock and possibly advance.
        if rec.is_worker:
            rec.time += 1
            sub.check_timer_and_increment_epoch(rec, rng, params)
        if sen.is_worker:
            sen.time += 1
            sub.check_timer_and_increment_epoch(sen, rng, params)

        # 3. The weak size estimate (logSize2) spreads; growth triggers Restart.
        sub.propagate_max_clock_value(rec, sen, rng, params)

        # 4. Lagging agents catch up to the maximum epoch.
        sub.propagate_incremented_epoch(rec, sen, rng, params)

        # 5. Worker-storage pairs deposit finished epoch maxima.
        sub.update_sum(rec, sen, params)

        # 6. Worker-worker pairs agree on the epoch's maximum geometric value.
        if rec.is_worker and sen.is_worker:
            sub.propagate_max_grv(rec, sen)

        # 7. Finished storage agents announce the estimate; it spreads to all.
        sub.propagate_output(rec, sen)

        return rec, sen

    def output(self, state: LogSizeAgentState) -> float | None:
        """The agent's current estimate of ``log2 n`` (``None`` until available)."""
        return state.current_estimate(self.params.output_offset)

    def state_signature(self, state: LogSizeAgentState) -> Hashable:
        return state.signature()

    def describe(self) -> str:
        return f"LogSizeEstimation({self.params.describe()})"


# -- convergence predicates -----------------------------------------------------------


def all_agents_done(simulation) -> bool:
    """Figure 2's convergence event: every agent reached the final epoch.

    The paper's simulation (Appendix C) declares convergence "when all agents
    reach ``epoch = 5 * logSize2``", i.e. when ``protocolDone`` holds
    everywhere.
    """
    return all(state.protocol_done for state in simulation.states)


def all_agents_have_output(simulation) -> bool:
    """Every agent currently reports a (non-``None``) estimate."""
    return all(
        simulation.protocol.output(state) is not None for state in simulation.states
    )


def estimation_within_tolerance(tolerance: float):
    """Predicate factory: every agent is done and within ``tolerance`` of ``log2 n``.

    This is the paper's correctness notion (Section 2.1) with the additive
    tolerance made explicit: Theorem 3.1 proves 5.7; the Figure 2 experiment
    observes 2 in practice.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")

    def predicate(simulation) -> bool:
        if not all_agents_done(simulation):
            return False
        target = math.log2(simulation.population_size)
        for state in simulation.states:
            value = simulation.protocol.output(state)
            if value is None or abs(value - target) > tolerance:
                return False
        return True

    return predicate


def estimate_error(simulation) -> dict[str, float]:
    """Summary of the estimation error over the population.

    Returns a dictionary with the mean/min/max estimate and the maximum
    absolute additive error against ``log2 n`` (only over agents that
    currently report an estimate).

    Raises
    ------
    ValueError
        If no agent reports an estimate yet.
    """
    target = math.log2(simulation.population_size)
    estimates = [
        value
        for value in (
            simulation.protocol.output(state) for state in simulation.states
        )
        if value is not None
    ]
    if not estimates:
        raise ValueError("no agent reports an estimate yet")
    return {
        "target_log2_n": target,
        "mean_estimate": sum(estimates) / len(estimates),
        "min_estimate": min(estimates),
        "max_estimate": max(estimates),
        "max_additive_error": max(abs(value - target) for value in estimates),
        "agents_reporting": float(len(estimates)),
    }


def worker_count(simulation) -> int:
    """Number of agents currently in role ``A`` (used to check Lemma 3.2)."""
    return simulation.count_where(lambda state: state.role is Role.WORKER)


def storage_count(simulation) -> int:
    """Number of agents currently in role ``S``."""
    return simulation.count_where(lambda state: state.role is Role.STORAGE)
