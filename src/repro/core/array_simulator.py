"""Vectorised ``Log-Size-Estimation`` on the vector engine.

Reproducing Figure 2 at the paper's population sizes requires on the order of
``10^9``–``10^10`` pairwise interactions, far beyond what a per-interaction
Python loop can do.  This module expresses the *same* protocol as a
:class:`~repro.engine.vector.VectorProtocol`: all agent fields live in numpy
arrays (struct-of-arrays), and the shared random-matching-round scheduler of
:class:`~repro.engine.vector.VectorSimulator` applies the transition kernel
to every matched pair simultaneously.

The matching-round scheduler is a standard approximation of the sequential
uniform-pair scheduler (each agent gets exactly one interaction per round
instead of a Poisson-distributed number per unit of time); epidemic
completion, the leaderless phase clock and the averaging of geometric maxima
behave identically up to constant factors.  See ``DESIGN.md`` (Schedulers)
and the cross-validation test in
``tests/core/test_array_simulator.py``, which checks that the two engines
agree on accuracy and on the growth shape of the convergence time.

Semantics implemented (in the same per-interaction order as the agent-level
protocol): role partition, phase-clock tick + epoch advance, ``logSize2``
max-propagation with restart, epoch catch-up (worker-worker and
storage-storage), ``Update-Sum`` deposits, per-epoch ``gr`` max-propagation,
and output announcement/propagation.

:class:`ArrayLogSizeSimulator` keeps the historical facade (``run_round`` /
``run_until_done`` / :class:`ArraySimulationResult`) over the generic
engine; the kernel itself (:class:`LogSizeVectorProtocol`) is reused by the
leader-driven terminating variant in :mod:`repro.core.vector_leader`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ProtocolParameters
from repro.engine.vector import VectorFields, VectorProtocol, VectorSimulator

# Role encoding in the arrays.
ROLE_UNASSIGNED = 0
ROLE_WORKER = 1
ROLE_STORAGE = 2


@dataclass(frozen=True)
class ArraySimulationResult:
    """Outcome of one vectorised run.

    Attributes
    ----------
    population_size:
        Number of agents simulated.
    converged:
        Whether the protocol's convergence condition was met within the
        budget (for Figure 2: every agent finished all epochs).
    convergence_time:
        Parallel time at which the convergence condition was first observed
        — exact to the matching round — or ``None``.
    rounds:
        Number of matching rounds executed.
    interactions:
        Total interactions executed (``rounds * floor(n / 2)``).
    final_estimate_mean / final_estimate_min / final_estimate_max:
        Statistics of the per-agent estimates at the end of the run.
    max_additive_error:
        ``max_agent |estimate - log2 n|`` at the end of the run.
    log_size2:
        The (common) final value of the weak estimate ``logSize2``.
    distinct_state_bound:
        Product of the realised field ranges — the quantity Lemma 3.9 bounds
        by ``O(log^4 n)`` (reported for the state-complexity table).
    """

    population_size: int
    converged: bool
    convergence_time: float | None
    rounds: int
    interactions: int
    final_estimate_mean: float
    final_estimate_min: float
    final_estimate_max: float
    max_additive_error: float
    log_size2: int
    distinct_state_bound: int

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the harness and the CLI)."""
        return {
            "population_size": self.population_size,
            "converged": self.converged,
            "convergence_time": self.convergence_time,
            "rounds": self.rounds,
            "interactions": self.interactions,
            "final_estimate_mean": self.final_estimate_mean,
            "final_estimate_min": self.final_estimate_min,
            "final_estimate_max": self.final_estimate_max,
            "max_additive_error": self.max_additive_error,
            "log_size2": self.log_size2,
            "distinct_state_bound": self.distinct_state_bound,
        }


class LogSizeVectorProtocol(VectorProtocol):
    """Vectorised transition kernel of Protocol 1 (``Log-Size-Estimation``).

    Parameters
    ----------
    params:
        Protocol constants (defaults to the paper's values).
    """

    tracked_fields = ("time", "epoch", "gr", "total", "log_size2")

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params or ProtocolParameters.paper()
        self._partition_complete = False

    def describe(self) -> str:
        return f"VectorLogSizeEstimation({self.params.describe()})"

    def init_fields(self, fields: VectorFields, rng: np.random.Generator) -> None:
        self.rng = rng
        self.role = fields.add("role", np.int8, fill=ROLE_UNASSIGNED)
        self.time = fields.add("time", np.int64)
        self.total = fields.add("total", np.int64)
        self.epoch = fields.add("epoch", np.int64)
        self.gr = fields.add("gr", np.int64, fill=1)
        self.log_size2 = fields.add("log_size2", np.int64, fill=1)
        self.done = fields.add("done", bool)
        self.updated = fields.add("updated", bool)
        self.output = fields.add("output", np.float64, fill=np.nan)

    # -- random draws --------------------------------------------------------

    def _draw_geometric(self, count: int) -> np.ndarray:
        """Vector of i.i.d. geometric samples (support ``{1, 2, ...}``)."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self.rng.geometric(
            self.params.geometric_success_probability, size=count
        ).astype(np.int64)

    def _draw_log_size2(self, count: int) -> np.ndarray:
        return self._draw_geometric(count) + self.params.log_size2_offset

    # -- per-round sub-steps -------------------------------------------------

    def _partition(self, rec: np.ndarray, sen: np.ndarray) -> None:
        role = self.role
        role_r = role[rec]
        role_s = role[sen]
        both_unassigned = (role_r == ROLE_UNASSIGNED) & (role_s == ROLE_UNASSIGNED)
        if both_unassigned.any():
            new_workers = sen[both_unassigned]
            role[new_workers] = ROLE_WORKER
            self.log_size2[new_workers] = self._draw_log_size2(new_workers.size)
            role[rec[both_unassigned]] = ROLE_STORAGE

        rec_unassigned = (role_r == ROLE_UNASSIGNED) & (role_s != ROLE_UNASSIGNED)
        if rec_unassigned.any():
            to_storage = rec[rec_unassigned & (role_s == ROLE_WORKER)]
            role[to_storage] = ROLE_STORAGE
            to_worker = rec[rec_unassigned & (role_s == ROLE_STORAGE)]
            role[to_worker] = ROLE_WORKER
            self.log_size2[to_worker] = self._draw_log_size2(to_worker.size)

        sen_unassigned = (role_s == ROLE_UNASSIGNED) & (role_r != ROLE_UNASSIGNED)
        if sen_unassigned.any():
            to_storage = sen[sen_unassigned & (role_r == ROLE_WORKER)]
            role[to_storage] = ROLE_STORAGE
            to_worker = sen[sen_unassigned & (role_r == ROLE_STORAGE)]
            role[to_worker] = ROLE_WORKER
            self.log_size2[to_worker] = self._draw_log_size2(to_worker.size)

        if not (role == ROLE_UNASSIGNED).any():
            self._partition_complete = True

    def _restart(self, agents: np.ndarray) -> None:
        """``Restart`` for the given absolute agent indices."""
        if agents.size == 0:
            return
        self.time[agents] = 0
        self.total[agents] = 0
        self.epoch[agents] = 0
        self.gr[agents] = self._draw_geometric(agents.size)
        self.done[agents] = False
        self.updated[agents] = False
        self.output[agents] = np.nan

    def _move_to_next(self, agents: np.ndarray) -> None:
        """``Move-to-Next-G.R.V`` for worker indices that advanced an epoch."""
        if agents.size == 0:
            return
        self.time[agents] = 0
        self.gr[agents] = self._draw_geometric(agents.size)
        self.updated[agents] = False

    def _check_timer(self, agents: np.ndarray) -> None:
        """``Check-if-Timer-Done-and-Increment-Epoch`` for worker indices."""
        if agents.size == 0:
            return
        threshold = self.params.clock_threshold_factor * self.log_size2[agents]
        ready = (
            ~self.done[agents]
            & self.updated[agents]
            & (self.time[agents] >= threshold)
        )
        advancing = agents[ready]
        if advancing.size == 0:
            return
        self.epoch[advancing] += 1
        self._move_to_next(advancing)
        finished = (
            self.epoch[advancing]
            >= self.params.epochs_factor * self.log_size2[advancing]
        )
        self.done[advancing[finished]] = True

    def _tick_clocks(self, rec: np.ndarray, sen: np.ndarray) -> None:
        workers_rec = rec[self.role[rec] == ROLE_WORKER]
        workers_sen = sen[self.role[sen] == ROLE_WORKER]
        self.time[workers_rec] += 1
        self.time[workers_sen] += 1
        self._check_timer(workers_rec)
        self._check_timer(workers_sen)

    def _propagate_log_size2(self, rec: np.ndarray, sen: np.ndarray) -> None:
        ls_r = self.log_size2[rec]
        ls_s = self.log_size2[sen]
        rec_behind = ls_r < ls_s
        if rec_behind.any():
            agents = rec[rec_behind]
            self.log_size2[agents] = ls_s[rec_behind]
            self._restart(agents)
        sen_behind = ls_s < ls_r
        if sen_behind.any():
            agents = sen[sen_behind]
            self.log_size2[agents] = ls_r[sen_behind]
            self._restart(agents)

    def _finish_storage(self, agents: np.ndarray) -> None:
        """Mark storage agents done and (re)compute their announced estimate."""
        if agents.size == 0:
            return
        limit = self.params.epochs_factor * self.log_size2[agents]
        newly_done = (~self.done[agents]) & (self.epoch[agents] >= limit) & (
            self.epoch[agents] > 0
        )
        self.done[agents[newly_done]] = True
        done_here = agents[self.done[agents] & (self.epoch[agents] > 0)]
        if done_here.size:
            self.output[done_here] = (
                self.total[done_here] / self.epoch[done_here]
                + self.params.output_offset
            )

    def _propagate_epoch(self, rec: np.ndarray, sen: np.ndarray) -> None:
        role_r = self.role[rec]
        role_s = self.role[sen]
        epoch_r = self.epoch[rec]
        epoch_s = self.epoch[sen]

        both_workers = (role_r == ROLE_WORKER) & (role_s == ROLE_WORKER)
        if both_workers.any():
            rec_behind = both_workers & (epoch_r < epoch_s)
            if rec_behind.any():
                agents = rec[rec_behind]
                self.epoch[agents] = epoch_s[rec_behind]
                self._move_to_next(agents)
                finished = self.epoch[agents] >= (
                    self.params.epochs_factor * self.log_size2[agents]
                )
                self.done[agents[finished]] = True
            sen_behind = both_workers & (epoch_s < epoch_r)
            if sen_behind.any():
                agents = sen[sen_behind]
                self.epoch[agents] = epoch_r[sen_behind]
                self._move_to_next(agents)
                finished = self.epoch[agents] >= (
                    self.params.epochs_factor * self.log_size2[agents]
                )
                self.done[agents[finished]] = True

        both_storage = (role_r == ROLE_STORAGE) & (role_s == ROLE_STORAGE)
        if both_storage.any():
            rec_behind = both_storage & (epoch_r < epoch_s)
            if rec_behind.any():
                agents = rec[rec_behind]
                self.epoch[agents] = epoch_s[rec_behind]
                self.total[agents] = self.total[sen[rec_behind]]
            sen_behind = both_storage & (epoch_s < epoch_r)
            if sen_behind.any():
                agents = sen[sen_behind]
                self.epoch[agents] = epoch_r[sen_behind]
                self.total[agents] = self.total[rec[sen_behind]]
            equal = both_storage & (self.epoch[rec] == self.epoch[sen])
            if equal.any():
                maximum = np.maximum(self.total[rec[equal]], self.total[sen[equal]])
                self.total[rec[equal]] = maximum
                self.total[sen[equal]] = maximum
            storage_involved = np.concatenate([rec[both_storage], sen[both_storage]])
            self._finish_storage(storage_involved)

    def _update_sum(self, rec: np.ndarray, sen: np.ndarray) -> None:
        role_r = self.role[rec]
        role_s = self.role[sen]
        worker_rec = (role_r == ROLE_WORKER) & (role_s == ROLE_STORAGE)
        worker_sen = (role_s == ROLE_WORKER) & (role_r == ROLE_STORAGE)
        if not worker_rec.any() and not worker_sen.any():
            return
        workers = np.concatenate([rec[worker_rec], sen[worker_sen]])
        storages = np.concatenate([sen[worker_rec], rec[worker_sen]])
        active = ~self.done[workers]
        workers = workers[active]
        storages = storages[active]
        if workers.size == 0:
            return
        threshold = self.params.clock_threshold_factor * self.log_size2[workers]
        deposit = (self.epoch[workers] == self.epoch[storages]) & (
            self.time[workers] >= threshold
        )
        if deposit.any():
            dep_workers = workers[deposit]
            dep_storages = storages[deposit]
            self.epoch[dep_storages] += 1
            self.total[dep_storages] += self.gr[dep_workers]
            self.updated[dep_workers] = True
            self._finish_storage(dep_storages)
        lagging = (~deposit) & (self.epoch[workers] < self.epoch[storages])
        if lagging.any():
            self.updated[workers[lagging]] = True

    def _propagate_gr(self, rec: np.ndarray, sen: np.ndarray) -> None:
        both_workers = (self.role[rec] == ROLE_WORKER) & (
            self.role[sen] == ROLE_WORKER
        )
        same_epoch = both_workers & (self.epoch[rec] == self.epoch[sen])
        if not same_epoch.any():
            return
        rec_agents = rec[same_epoch]
        sen_agents = sen[same_epoch]
        maximum = np.maximum(self.gr[rec_agents], self.gr[sen_agents])
        self.gr[rec_agents] = maximum
        self.gr[sen_agents] = maximum

    def _propagate_output(self, rec: np.ndarray, sen: np.ndarray) -> None:
        if not self.done.any():
            return
        out_r = self.output[rec]
        out_s = self.output[sen]
        auth_r = (self.role[rec] == ROLE_STORAGE) & self.done[rec] & ~np.isnan(out_r)
        auth_s = (self.role[sen] == ROLE_STORAGE) & self.done[sen] & ~np.isnan(out_s)
        keep_rec = (self.role[rec] == ROLE_STORAGE) & self.done[rec]
        keep_sen = (self.role[sen] == ROLE_STORAGE) & self.done[sen]
        rec_listens = auth_s & ~keep_rec
        sen_listens = auth_r & ~keep_sen
        self.output[rec[rec_listens]] = out_s[rec_listens]
        self.output[sen[sen_listens]] = out_r[sen_listens]
        # Second-hand propagation: fill empty outputs from any non-empty one.
        fill_rec = np.isnan(self.output[rec]) & ~np.isnan(out_s)
        fill_sen = np.isnan(self.output[sen]) & ~np.isnan(out_r)
        self.output[rec[fill_rec]] = out_s[fill_rec]
        self.output[sen[fill_sen]] = out_r[fill_sen]

    # -- VectorProtocol interface --------------------------------------------

    def apply_round(
        self,
        fields: VectorFields,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        if not self._partition_complete:
            self._partition(rec, sen)
        self._tick_clocks(rec, sen)
        self._propagate_log_size2(rec, sen)
        self._propagate_epoch(rec, sen)
        self._update_sum(rec, sen)
        self._propagate_gr(rec, sen)
        self._propagate_output(rec, sen)

    def all_done(self, fields: VectorFields) -> bool:
        """Figure 2's convergence condition: every agent finished all epochs."""
        return bool(self.done.all())

    # -- estimates and result building ---------------------------------------

    def estimates(self) -> np.ndarray:
        """Per-agent estimates currently reported (NaN where unavailable)."""
        return self.output

    def max_additive_error(self, population_size: int) -> float:
        """``max_agent |estimate - log2 n|`` over agents reporting an estimate."""
        reported = self.estimates()
        reported = reported[~np.isnan(reported)]
        if reported.size == 0:
            return math.inf
        return float(np.abs(reported - math.log2(population_size)).max())

    def distinct_state_bound(self, fields: VectorFields) -> int:
        """Product of realised field ranges (the Lemma 3.9 style state count)."""
        return int(
            (fields.max_observed("log_size2") + 1)
            * (fields.max_observed("gr") + 1)
            * (fields.max_observed("time") + 1)
            * (fields.max_observed("epoch") + 1)
        )

    def build_result(
        self, simulator: VectorSimulator, convergence_time: float | None
    ) -> ArraySimulationResult:
        reported = self.estimates()
        reported = reported[~np.isnan(reported)]
        if reported.size:
            mean_estimate = float(reported.mean())
            min_estimate = float(reported.min())
            max_estimate = float(reported.max())
        else:
            mean_estimate = min_estimate = max_estimate = math.nan
        return ArraySimulationResult(
            population_size=simulator.n,
            converged=convergence_time is not None,
            convergence_time=convergence_time,
            rounds=simulator.rounds,
            interactions=simulator.interactions,
            final_estimate_mean=mean_estimate,
            final_estimate_min=min_estimate,
            final_estimate_max=max_estimate,
            max_additive_error=self.max_additive_error(simulator.n),
            log_size2=int(self.log_size2.max()),
            distinct_state_bound=self.distinct_state_bound(simulator.fields),
        )


class ArrayLogSizeSimulator(VectorSimulator):
    """Vectorised simulator of Protocol 1 over a population of ``n`` agents.

    A thin facade over :class:`~repro.engine.vector.VectorSimulator` running
    :class:`LogSizeVectorProtocol`, kept for the historical API
    (``run_round`` / ``run_until_done`` / ``estimates`` /
    ``max_additive_error`` / ``distinct_state_bound``).

    Parameters
    ----------
    population_size:
        Number of agents (at least 2).
    params:
        Protocol constants (defaults to the paper's values).
    seed:
        Seed of the numpy generator; runs are reproducible per seed.
    scheduler:
        Optional round-level scheduler (name, spec or instance), forwarded
        to :class:`~repro.engine.vector.VectorSimulator`; defaults to the
        uniform matching round.
    """

    def __init__(
        self,
        population_size: int,
        params: ProtocolParameters | None = None,
        seed: int | None = None,
        scheduler=None,
    ) -> None:
        kernel = LogSizeVectorProtocol(params)
        super().__init__(kernel, population_size, seed=seed, scheduler=scheduler)
        self.params = kernel.params

    # -- array views (historical attribute surface) --------------------------

    @property
    def role(self) -> np.ndarray:
        return self.protocol.role

    @property
    def time(self) -> np.ndarray:
        return self.protocol.time

    @property
    def total(self) -> np.ndarray:
        return self.protocol.total

    @property
    def epoch(self) -> np.ndarray:
        return self.protocol.epoch

    @property
    def gr(self) -> np.ndarray:
        return self.protocol.gr

    @property
    def log_size2(self) -> np.ndarray:
        return self.protocol.log_size2

    @property
    def done(self) -> np.ndarray:
        return self.protocol.done

    @property
    def updated(self) -> np.ndarray:
        return self.protocol.updated

    @property
    def output(self) -> np.ndarray:
        return self.protocol.output

    # -- realised field ranges (state-complexity table) -----------------------

    @property
    def _max_time(self) -> int:
        return self.fields.max_observed("time")

    @property
    def _max_epoch(self) -> int:
        return self.fields.max_observed("epoch")

    @property
    def _max_gr(self) -> int:
        return self.fields.max_observed("gr")

    @property
    def _max_total(self) -> int:
        return self.fields.max_observed("total")

    @property
    def _max_log_size2(self) -> int:
        return self.fields.max_observed("log_size2")

    # -- queries --------------------------------------------------------------

    def estimates(self) -> np.ndarray:
        """Per-agent estimates currently reported (NaN where unavailable)."""
        return self.protocol.estimates()

    def max_additive_error(self) -> float:
        """``max_agent |estimate - log2 n|`` over agents reporting an estimate."""
        return self.protocol.max_additive_error(self.n)

    def distinct_state_bound(self) -> int:
        """Product of realised field ranges (the Lemma 3.9 style state count)."""
        return self.protocol.distinct_state_bound(self.fields)


def expected_convergence_time(population_size: int, params: ProtocolParameters) -> float:
    """Rough a-priori estimate of the convergence time (used to size budgets).

    The protocol runs ``K = epochs_factor * logSize2`` epochs, each lasting
    about ``clock_threshold_factor * logSize2 / 2`` units of parallel time
    (each agent has about two interactions per unit of time), with
    ``logSize2 ~ log2 n + 2``.  Benchmarks multiply this by a safety factor to
    obtain their budgets.
    """
    log_estimate = math.log2(max(2, population_size)) + params.log_size2_offset + 1
    per_epoch = params.clock_threshold_factor * log_estimate / 2.0
    return params.epochs_factor * log_estimate * per_epoch
