"""Terminating size estimation with an initial leader (Section 3.4, Theorem 3.13).

Theorem 4.1 rules out termination for *dense* initial configurations, but with
an initial leader the picture changes: the leader can drive an
Angluin–Aspnes–Eisenstat phase clock, each wrap of which takes
``Theta(log n)`` parallel time w.h.p., and terminate after
``k2 * 5 * logSize2`` wraps — by which point the (leaderless) size-estimation
computation running underneath has converged w.h.p.

Implementation: every agent runs the ordinary
:class:`~repro.core.log_size_estimation.LogSizeEstimationProtocol` state
machine; on top of it each agent carries a
:class:`~repro.core.phase_clock.PhaseClockAgent` reading and a ``terminated``
flag.  Agent 0 is the leader.  When the leader's completed clock wraps reach
``termination_rounds_factor * epochs_factor * logSize2`` it sets
``terminated = True`` together with its current estimate, and both spread to
the rest of the population by epidemic.

The protocol is *uniform* (the thresholds are expressed in terms of the
dynamically computed ``logSize2``) and *terminating with high probability*:
the termination signal is produced only after the underlying estimate has
converged, unless the phase clock or ``logSize2`` failed their
high-probability guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable

from repro.core.fields import LogSizeAgentState
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.core.phase_clock import LeaderDrivenPhaseClock, PhaseClockAgent
from repro.exceptions import ProtocolError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


@dataclass(slots=True)
class LeaderTerminatingState:
    """State of one agent of the terminating-with-a-leader protocol.

    Attributes
    ----------
    base:
        The underlying ``Log-Size-Estimation`` state.
    is_leader:
        Whether this agent is the unique initial leader.
    clock:
        The agent's leader-driven phase-clock reading.
    terminated:
        Whether the termination signal has been produced/observed.
    announced:
        The estimate broadcast together with the termination signal
        (``None`` until termination reaches this agent).
    """

    base: LogSizeAgentState
    is_leader: bool = False
    clock: PhaseClockAgent = PhaseClockAgent()
    terminated: bool = False
    announced: float | None = None

    def clone(self) -> "LeaderTerminatingState":
        return LeaderTerminatingState(
            base=self.base.clone(),
            is_leader=self.is_leader,
            clock=self.clock,
            terminated=self.terminated,
            announced=self.announced,
        )


class LeaderTerminatingSizeEstimation(AgentProtocol[LeaderTerminatingState]):
    """Uniform terminating size estimation with an initial leader (Theorem 3.13).

    Parameters
    ----------
    params:
        Constants of the underlying size-estimation protocol.
    phase_count:
        Number of phases of the leader-driven clock.  The paper requires a
        sufficiently large constant (> 288) for its high-probability bounds;
        tests use smaller values for speed.
    termination_rounds_factor:
        The leader terminates after
        ``termination_rounds_factor * epochs_factor * logSize2`` completed
        clock wraps (the paper's ``k2``).
    """

    is_uniform = True

    def __init__(
        self,
        params: ProtocolParameters | None = None,
        phase_count: int = 289,
        termination_rounds_factor: int = 2,
    ) -> None:
        if termination_rounds_factor < 1:
            raise ProtocolError(
                "termination_rounds_factor must be >= 1, got "
                f"{termination_rounds_factor}"
            )
        self.params = params or ProtocolParameters.paper()
        self.inner = LogSizeEstimationProtocol(self.params)
        self.phase_clock = LeaderDrivenPhaseClock(phase_count=phase_count)
        self.termination_rounds_factor = termination_rounds_factor

    # -- helpers -------------------------------------------------------------------

    def _termination_rounds(self, log_size2: int) -> int:
        """Number of clock wraps after which the leader terminates."""
        return self.termination_rounds_factor * self.params.total_epochs(log_size2)

    # -- AgentProtocol interface ----------------------------------------------------

    def initial_state(self, agent_id: int) -> LeaderTerminatingState:
        return LeaderTerminatingState(
            base=self.inner.initial_state(agent_id), is_leader=(agent_id == 0)
        )

    def transition(
        self,
        receiver: LeaderTerminatingState,
        sender: LeaderTerminatingState,
        rng: RandomSource,
    ) -> tuple[LeaderTerminatingState, LeaderTerminatingState]:
        rec = receiver.clone()
        sen = sender.clone()

        # The underlying size-estimation computation proceeds unchanged.
        rec.base, sen.base = self.inner.transition(rec.base, sen.base, rng)

        # The leader-driven phase clock ticks on every interaction.
        rec.clock, sen.clock = self.phase_clock.interact(
            rec.clock, rec.is_leader, sen.clock, sen.is_leader
        )

        # The leader produces the termination signal after enough wraps.
        for agent in (rec, sen):
            if agent.is_leader and not agent.terminated:
                threshold = self._termination_rounds(agent.base.log_size2)
                if self.phase_clock.rounds_completed(agent.clock) >= threshold:
                    agent.terminated = True
                    agent.announced = self.inner.output(agent.base)

        # The termination signal and announced estimate spread by epidemic.
        if rec.terminated or sen.terminated:
            announced = rec.announced if rec.announced is not None else sen.announced
            if announced is None:
                announced = self.inner.output(rec.base) or self.inner.output(sen.base)
            rec.terminated = sen.terminated = True
            if rec.announced is None:
                rec.announced = announced
            if sen.announced is None:
                sen.announced = announced

        return rec, sen

    def output(self, state: LeaderTerminatingState) -> float | None:
        """The announced estimate once terminated, else the live estimate."""
        if state.terminated and state.announced is not None:
            return state.announced
        return self.inner.output(state.base)

    def state_signature(self, state: LeaderTerminatingState) -> Hashable:
        return (
            state.base.signature(),
            state.is_leader,
            state.clock.phase,
            state.clock.round,
            state.terminated,
            state.announced,
        )

    def describe(self) -> str:
        return (
            f"LeaderTerminatingSizeEstimation(phases={self.phase_clock.phase_count}, "
            f"k2={self.termination_rounds_factor}, {self.params.describe()})"
        )


# -- predicates --------------------------------------------------------------------------


def any_agent_terminated(simulation) -> bool:
    """Whether the termination signal has been produced by some agent."""
    return any(state.terminated for state in simulation.states)


def all_agents_terminated(simulation) -> bool:
    """Whether the termination signal has reached every agent."""
    return all(state.terminated for state in simulation.states)


def termination_happened_after_convergence(simulation) -> bool:
    """Check Theorem 3.13's qualitative guarantee on the final population.

    ``True`` when every agent is terminated and the announced estimate was
    produced by a finished underlying computation (all agents done).
    """
    return all(
        state.terminated and state.base.protocol_done for state in simulation.states
    )
