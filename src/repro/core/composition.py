"""Restart-based composition of the size estimate with downstream protocols.

Section 1.1 of the paper describes a "simple and elegant" way to compose the
(non-terminating) size estimate with downstream protocols that need it, based
on the leaderless phase clock:

1. Each agent obtains the weak size estimate ``s`` (``logSize2``: a geometric
   variable whose maximum is propagated by epidemic).
2. Each agent counts its own interactions, ``c``, up to a threshold
   ``f(s)`` chosen large enough that, w.h.p., no agent reaches ``f(s)``
   before the downstream protocol (which runs concurrently, parameterised by
   ``s``) has converged.
3. The first agent to reach ``f(s)`` signals the whole population to move to
   the next stage (the signal spreads by epidemic; lagging agents jump
   forward).
4. Whenever an agent's estimate ``s`` increases, it restarts the entire
   downstream computation (the restart scheme) — so the composition is
   correct as long as the final, maximal ``s`` is a good estimate.

Two classes implement this:

* :class:`RestartComposition` — one downstream protocol; the stage counter
  only distinguishes "still running" from "declared converged".
* :class:`StagedComposition` — a series of ``K`` downstream stages
  (the paper's multi-stage composition); each stage runs for ``f(s)``
  interactions of local counting before the next one starts.

The downstream protocols receive the current estimate ``s`` through an
optional ``configure_estimate`` hook, which is how a *nonuniform* protocol
(one that wants ``floor(log n)`` hard-coded) is "uniformised": the hook is the
only place the estimate enters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from repro.core.parameters import ProtocolParameters
from repro.exceptions import CompositionError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


@dataclass(slots=True)
class CompositionAgentState:
    """State of one agent of the composition wrapper.

    Attributes
    ----------
    estimate:
        The weak size estimate ``s`` (``None`` until generated at the agent's
        first interaction, which keeps the initial configuration identical).
    counter:
        Interactions counted in the current stage (the composition's own
        leaderless phase clock).
    stage:
        Index of the stage the agent is currently executing.
    downstream:
        The agent's state in the *current* stage's downstream protocol.
    downstream_initial:
        The agent's pristine initial downstream states, one per stage, kept so
        a restart can rebuild them without consulting the population size.
    """

    estimate: int | None
    counter: int
    stage: int
    downstream: Any
    downstream_initial: tuple[Any, ...]

    def clone(self) -> "CompositionAgentState":
        downstream = self.downstream
        clone_method = getattr(downstream, "clone", None)
        if callable(clone_method):
            downstream = clone_method()
        return CompositionAgentState(
            estimate=self.estimate,
            counter=self.counter,
            stage=self.stage,
            downstream=downstream,
            downstream_initial=self.downstream_initial,
        )


class StagedComposition(AgentProtocol[CompositionAgentState]):
    """Run a series of downstream protocols, staged by a leaderless phase clock.

    Parameters
    ----------
    stages:
        The downstream protocols, executed in order.  Each must be an
        :class:`~repro.protocols.base.AgentProtocol`.  A protocol may expose a
        ``configure_estimate(estimate)`` method; it is called (on the shared
        protocol object) whenever an agent (re)starts that stage with a new
        size estimate — this is the hook through which nonuniform protocols
        receive ``floor(log n)``-like values.
    stage_length_factor:
        The threshold ``f(s) = stage_length_factor * s`` of the composition's
        phase clock.  Must be chosen so the downstream stage converges within
        ``f(s)`` interactions per agent w.h.p. (the paper's requirement
        ``f(s) > t(n)``).
    params:
        Protocol constants (only the geometric-draw parameters and the
        ``logSize2`` offset are used here).
    """

    is_uniform = True

    def __init__(
        self,
        stages: Sequence[AgentProtocol],
        stage_length_factor: int,
        params: ProtocolParameters | None = None,
    ) -> None:
        if not stages:
            raise CompositionError("at least one downstream stage is required")
        if stage_length_factor < 1:
            raise CompositionError(
                f"stage_length_factor must be >= 1, got {stage_length_factor}"
            )
        self.stages = tuple(stages)
        self.stage_length_factor = stage_length_factor
        self.params = params or ProtocolParameters.paper()

    # -- helpers ----------------------------------------------------------------------

    def _threshold(self, estimate: int) -> int:
        """The stage length ``f(s)`` in interactions per agent."""
        return self.stage_length_factor * estimate

    def _stage_protocol(self, stage: int) -> AgentProtocol:
        """The downstream protocol executing at ``stage`` (clamped to the last)."""
        return self.stages[min(stage, len(self.stages) - 1)]

    def _configure(self, stage: int, estimate: int) -> None:
        protocol = self._stage_protocol(stage)
        hook = getattr(protocol, "configure_estimate", None)
        if callable(hook):
            hook(estimate)

    def _enter_stage(self, agent: CompositionAgentState, stage: int) -> None:
        """Move ``agent`` to ``stage``, starting that stage's protocol afresh."""
        stage = min(stage, len(self.stages) - 1)
        agent.stage = stage
        agent.counter = 0
        agent.downstream = agent.downstream_initial[stage]
        if agent.estimate is not None:
            self._configure(stage, agent.estimate)

    def _restart(self, agent: CompositionAgentState) -> None:
        """Restart the whole downstream computation (estimate grew)."""
        self._enter_stage(agent, 0)

    # -- AgentProtocol interface ---------------------------------------------------------

    def initial_state(self, agent_id: int) -> CompositionAgentState:
        initials = tuple(stage.initial_state(agent_id) for stage in self.stages)
        return CompositionAgentState(
            estimate=None,
            counter=0,
            stage=0,
            downstream=initials[0],
            downstream_initial=initials,
        )

    def transition(
        self,
        receiver: CompositionAgentState,
        sender: CompositionAgentState,
        rng: RandomSource,
    ) -> tuple[CompositionAgentState, CompositionAgentState]:
        rec = receiver.clone()
        sen = sender.clone()

        # 1. Lazily generate the weak estimate at the first interaction.
        for agent in (rec, sen):
            if agent.estimate is None:
                agent.estimate = (
                    rng.geometric(self.params.geometric_success_probability)
                    + self.params.log_size2_offset
                )

        # 2. Propagate the maximum estimate; growth restarts the composition.
        if rec.estimate < sen.estimate:
            rec.estimate = sen.estimate
            self._restart(rec)
        elif sen.estimate < rec.estimate:
            sen.estimate = rec.estimate
            self._restart(sen)

        # 3. Lagging agents jump forward to the maximum stage.
        if rec.stage < sen.stage:
            self._enter_stage(rec, sen.stage)
        elif sen.stage < rec.stage:
            self._enter_stage(sen, rec.stage)

        # 4. The current stage's downstream protocol runs (same stage only —
        #    agents in different stages are working on different problems, but
        #    after step 3 both participants agree on the stage).
        stage_protocol = self._stage_protocol(rec.stage)
        rec.downstream, sen.downstream = stage_protocol.transition(
            rec.downstream, sen.downstream, rng
        )

        # 5. The composition's phase clock: count interactions; the first agent
        #    to reach f(s) signals the move to the next stage.
        for agent in (rec, sen):
            agent.counter += 1
            if (
                agent.stage < len(self.stages) - 1
                and agent.estimate is not None
                and agent.counter >= self._threshold(agent.estimate)
            ):
                self._enter_stage(agent, agent.stage + 1)

        return rec, sen

    def output(self, state: CompositionAgentState) -> Any:
        """The output of the stage the agent is currently executing."""
        return self._stage_protocol(state.stage).output(state.downstream)

    def state_signature(self, state: CompositionAgentState) -> Hashable:
        downstream_protocol = self._stage_protocol(state.stage)
        return (
            state.estimate,
            state.counter,
            state.stage,
            downstream_protocol.state_signature(state.downstream),
        )

    def describe(self) -> str:
        names = ", ".join(stage.describe() for stage in self.stages)
        return (
            f"StagedComposition(f(s)={self.stage_length_factor}*s, stages=[{names}])"
        )


class RestartComposition(StagedComposition):
    """Single-downstream-stage convenience wrapper.

    Equivalent to a :class:`StagedComposition` with two stages where the
    second stage is the same protocol: the stage index then acts as the
    "the phase clock has fired at least once, so the downstream protocol has
    had ``f(s)`` interactions per agent and is trusted to have converged"
    signal, which :meth:`stage_signal_reached` exposes.
    """

    def __init__(
        self,
        downstream: AgentProtocol,
        stage_length_factor: int,
        params: ProtocolParameters | None = None,
    ) -> None:
        super().__init__(
            stages=(downstream, downstream),
            stage_length_factor=stage_length_factor,
            params=params,
        )
        self.downstream = downstream

    def _enter_stage(self, agent: CompositionAgentState, stage: int) -> None:
        """Entering the signalling stage keeps the downstream state (no reset).

        The second "stage" is the same protocol instance continuing to run;
        only restarts (estimate growth) reset the downstream state.
        """
        stage = min(stage, len(self.stages) - 1)
        previous_stage = agent.stage
        agent.stage = stage
        agent.counter = 0
        if stage == 0 or previous_stage > stage:
            agent.downstream = agent.downstream_initial[0]
        if agent.estimate is not None:
            self._configure(stage, agent.estimate)

    def describe(self) -> str:
        return (
            f"RestartComposition(f(s)={self.stage_length_factor}*s, "
            f"downstream={self.downstream.describe()})"
        )


def stage_signal_reached(simulation) -> bool:
    """Predicate: every agent has received the "stage complete" signal."""
    return all(state.stage >= 1 for state in simulation.states)


def make_estimate_hook(protocol: AgentProtocol, setter: Callable[[Any, int], None]):
    """Attach a ``configure_estimate`` hook to an existing protocol object.

    Convenience for uniformising third-party nonuniform protocols in examples
    and tests: ``setter(protocol, estimate)`` is invoked with the current weak
    size estimate whenever a stage (re)starts.
    """

    def configure_estimate(estimate: int) -> None:
        setter(protocol, estimate)

    protocol.configure_estimate = configure_estimate  # type: ignore[attr-defined]
    return protocol
