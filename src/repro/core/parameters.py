"""Numeric constants of the ``Log-Size-Estimation`` protocol.

The paper fixes several constants inside the protocol:

* the leaderless phase clock counts each agent's interactions up to
  ``95 * logSize2`` before the agent may move to the next epoch
  (Subprotocol 6; the 95 comes from Corollary 3.7: an agent has at most
  ``~94 log n`` interactions during one maximum-propagation epidemic w.h.p.);
* the number of epochs — hence the number ``K`` of geometric maxima that are
  averaged — is ``5 * logSize2`` (Corollary A.4: this makes ``K >= 4 log2 n``
  w.h.p., which Corollary D.10 needs for the additive-error bound);
* ``logSize2`` is shifted by ``+2`` after generation (proof of Lemma 3.8), so
  that w.h.p. it lies in ``[log n - log ln n, 2 log n + 1]``.

:class:`ProtocolParameters` makes these constants explicit and configurable.
Benchmarks and the Figure 2 reproduction use the paper values (the default);
unit tests use the scaled-down presets so that runs finish in milliseconds
while exercising exactly the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProtocolError


@dataclass(frozen=True, slots=True)
class ProtocolParameters:
    """Constants of Protocol 1 (``Log-Size-Estimation``).

    Attributes
    ----------
    clock_threshold_factor:
        The leaderless phase clock threshold is
        ``clock_threshold_factor * logSize2`` interactions per epoch
        (paper: 95).
    epochs_factor:
        The protocol runs ``epochs_factor * logSize2`` epochs, i.e. averages
        that many geometric maxima (paper: 5).
    log_size2_offset:
        Additive shift applied to the freshly generated ``logSize2``
        (paper: +2, proof of Lemma 3.8).
    geometric_success_probability:
        Success probability of the geometric draws (paper: fair coins, 1/2).
    output_offset:
        Constant added to the average of the epoch maxima when producing the
        output (paper: +1, compensating for only ``~n/2`` agents being in
        role ``A``; ``output = sum/epoch + 1``).
    """

    clock_threshold_factor: int = 95
    epochs_factor: int = 5
    log_size2_offset: int = 2
    geometric_success_probability: float = 0.5
    output_offset: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_threshold_factor < 1:
            raise ProtocolError(
                f"clock_threshold_factor must be >= 1, got {self.clock_threshold_factor}"
            )
        if self.epochs_factor < 1:
            raise ProtocolError(
                f"epochs_factor must be >= 1, got {self.epochs_factor}"
            )
        if self.log_size2_offset < 0:
            raise ProtocolError(
                f"log_size2_offset must be >= 0, got {self.log_size2_offset}"
            )
        if not 0.0 < self.geometric_success_probability < 1.0:
            raise ProtocolError(
                "geometric_success_probability must be in (0, 1), got "
                f"{self.geometric_success_probability}"
            )

    # -- derived quantities ------------------------------------------------------

    def clock_threshold(self, log_size2: int) -> int:
        """Phase-clock threshold (interactions per epoch) for a given ``logSize2``."""
        return self.clock_threshold_factor * log_size2

    def total_epochs(self, log_size2: int) -> int:
        """Number of epochs ``K`` the protocol runs for a given ``logSize2``."""
        return self.epochs_factor * log_size2

    # -- presets --------------------------------------------------------------------

    @classmethod
    def paper(cls) -> "ProtocolParameters":
        """The constants used in the paper (95 / 5 / +2 / fair coins)."""
        return cls()

    @classmethod
    def fast_test(cls) -> "ProtocolParameters":
        """Scaled-down constants for unit tests.

        The phase clock fires after ``8 * logSize2`` interactions and only
        ``2 * logSize2`` epochs run.  The protocol's mechanics (partition,
        restart, epidemics, averaging) are identical; only the
        high-probability guarantees are weaker, which the tests account for
        with looser tolerances.
        """
        return cls(clock_threshold_factor=8, epochs_factor=2)

    @classmethod
    def moderate(cls) -> "ProtocolParameters":
        """Intermediate constants for integration tests and quick demos."""
        return cls(clock_threshold_factor=24, epochs_factor=3)

    def describe(self) -> str:
        """One-line description used by reports."""
        return (
            f"clock={self.clock_threshold_factor}*logSize2, "
            f"epochs={self.epochs_factor}*logSize2, "
            f"offset=+{self.log_size2_offset}, "
            f"p={self.geometric_success_probability}"
        )
