"""Per-agent state of the ``Log-Size-Estimation`` protocol (Protocol 1).

The paper's agents store a constant number of integer fields; this module
defines them as a mutable slotted dataclass (:class:`LogSizeAgentState`) plus
the role labels (:class:`Role`).  The state object is mutable for speed —
millions of interactions are simulated — but the protocol's transition always
works on copies (:meth:`LogSizeAgentState.clone`), so the engine's
value-semantics contract is respected.

Field glossary (paper names in parentheses):

===============  ==============  =====================================================
Field            Paper name      Meaning
===============  ==============  =====================================================
``role``         ``role``        ``X`` (unassigned), ``A`` (worker), ``S`` (storage)
``time``         ``time``        interactions counted in the current epoch
``total``        ``sum``         sum of per-epoch maxima (held by ``S`` agents)
``epoch``        ``epoch``       current epoch index
``gr``           ``gr``          current epoch's geometric variable / running maximum
``log_size2``    ``logSize2``    weak (2-factor) estimate of ``log2 n``; sets K and
                                 the phase-clock threshold
``protocol_done``  ``protocolDone``  all epochs finished
``updated_sum``  ``updatedSUM``  this epoch's maximum has been deposited in an S agent
``output``       ``output``      the final estimate of ``log2 n`` (``None`` until set)
===============  ==============  =====================================================

``sum`` is renamed ``total`` to avoid shadowing the Python built-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable


class Role(str, Enum):
    """Roles of Protocol 1's population split.

    ``A`` agents generate geometric random variables, run the leaderless
    phase clock and propagate maxima; ``S`` agents only store the running sum
    of per-epoch maxima (the paper's *space multiplexing*).  ``X`` is the
    initial unassigned role.
    """

    UNASSIGNED = "X"
    WORKER = "A"
    STORAGE = "S"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class LogSizeAgentState:
    """Mutable state record of one agent of ``Log-Size-Estimation``."""

    role: Role = Role.UNASSIGNED
    time: int = 0
    total: int = 0
    epoch: int = 0
    gr: int = 1
    log_size2: int = 1
    protocol_done: bool = False
    updated_sum: bool = False
    output: float | None = None

    def clone(self) -> "LogSizeAgentState":
        """Return an independent copy of this state."""
        return LogSizeAgentState(
            role=self.role,
            time=self.time,
            total=self.total,
            epoch=self.epoch,
            gr=self.gr,
            log_size2=self.log_size2,
            protocol_done=self.protocol_done,
            updated_sum=self.updated_sum,
            output=self.output,
        )

    def signature(self) -> Hashable:
        """Hashable signature for distinct-state counting and configurations.

        The paper's state count is over the contents of the working tape,
        i.e. exactly these fields.
        """
        return (
            self.role.value,
            self.time,
            self.total,
            self.epoch,
            self.gr,
            self.log_size2,
            self.protocol_done,
            self.updated_sum,
            self.output,
        )

    # -- role helpers -----------------------------------------------------------

    @property
    def is_worker(self) -> bool:
        """``True`` if the agent has role ``A``."""
        return self.role is Role.WORKER

    @property
    def is_storage(self) -> bool:
        """``True`` if the agent has role ``S``."""
        return self.role is Role.STORAGE

    @property
    def is_unassigned(self) -> bool:
        """``True`` if the agent has not been assigned a role yet."""
        return self.role is Role.UNASSIGNED

    def current_estimate(self, output_offset: float = 1.0) -> float | None:
        """The estimate this agent would currently report.

        ``S`` agents derive it from their running average; other agents report
        their stored ``output`` field (copied from a finished ``S`` agent).
        """
        if self.is_storage and self.protocol_done and self.epoch > 0:
            return self.total / self.epoch + output_offset
        return self.output

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogSizeAgentState):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:  # pragma: no cover - states rarely hashed directly
        return hash(self.signature())
