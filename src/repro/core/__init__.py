"""The paper's primary contribution: uniform size estimation and its variants.

Modules
-------
``parameters``
    :class:`ProtocolParameters` — the numeric constants of the protocol
    (phase-clock threshold factor 95, epoch-count factor 5, ...), with the
    paper's values as defaults and scaled-down presets for fast tests.
``fields`` / ``subprotocols``
    The per-agent state record of Protocol 1 and the paper's subroutines
    (``Partition-Into-A/S``, ``Propagate-Max-Clock-Value``, ``Restart``,
    ``Update-Sum``, ...), implemented as small functions mirroring the
    pseudocode.
``log_size_estimation``
    Protocol 1 — the uniform leaderless ``Log-Size-Estimation`` protocol
    (Theorem 3.1).
``synthetic_coin``
    Appendix B — the variant with no access to random bits (roles A/F,
    synthetic coins from the sender/receiver choice).
``leader_terminating``
    Section 3.4 — terminating size estimation with an initial leader
    (Theorem 3.13).
``probability_one``
    Section 3.3 — probability-1 upper bound on ``log2 n`` via the slow exact
    backup protocol.
``phase_clock``
    Leaderless and leader-driven phase clocks as reusable components.
``composition``
    The restart-based composition scheme of Section 1.1 for running
    downstream (possibly nonuniform) protocols on top of the size estimate.
``array_simulator``
    Protocol 1 as a vector-engine kernel (numpy struct-of-arrays) for large
    populations — the engine behind the Figure 2 reproduction.
``vector_leader``
    The Theorem 3.13 leader-driven terminating protocol as a vector-engine
    kernel, scaling that experiment to ``n >= 10^6``.
"""

from repro.core.parameters import ProtocolParameters
from repro.core.fields import LogSizeAgentState, Role
from repro.core.log_size_estimation import (
    LogSizeEstimationProtocol,
    all_agents_done,
    estimate_error,
    estimation_within_tolerance,
)
from repro.core.synthetic_coin import SyntheticCoinLogSizeEstimation
from repro.core.leader_terminating import LeaderTerminatingSizeEstimation
from repro.core.probability_one import ProbabilityOneUpperBoundProtocol
from repro.core.phase_clock import LeaderDrivenPhaseClock, LeaderlessPhaseClock
from repro.core.composition import RestartComposition, StagedComposition
from repro.core.array_simulator import (
    ArrayLogSizeSimulator,
    ArraySimulationResult,
    LogSizeVectorProtocol,
)
from repro.core.vector_leader import (
    LeaderTerminatingVectorProtocol,
    expected_termination_time,
)

__all__ = [
    "ProtocolParameters",
    "LogSizeAgentState",
    "Role",
    "LogSizeEstimationProtocol",
    "all_agents_done",
    "estimate_error",
    "estimation_within_tolerance",
    "SyntheticCoinLogSizeEstimation",
    "LeaderTerminatingSizeEstimation",
    "ProbabilityOneUpperBoundProtocol",
    "LeaderDrivenPhaseClock",
    "LeaderlessPhaseClock",
    "RestartComposition",
    "StagedComposition",
    "ArrayLogSizeSimulator",
    "ArraySimulationResult",
    "LogSizeVectorProtocol",
    "LeaderTerminatingVectorProtocol",
    "expected_termination_time",
]
