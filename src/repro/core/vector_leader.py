"""Vectorised leader-driven terminating size estimation (Theorem 3.13).

The agent-level implementation
(:class:`repro.core.leader_terminating.LeaderTerminatingSizeEstimation`) tops
out around ``n ~ 10^3`` in pure Python; this kernel runs the same protocol on
the vector engine so the Theorem 3.13 experiment (termination-signal time
grows with ``n``, unlike the flat curve of Theorem 4.1) scales to
``n >= 10^6``.

Composition, mirroring the agent-level transition order per interaction:

1. the underlying ``Log-Size-Estimation`` computation proceeds unchanged
   (the inherited :class:`~repro.core.array_simulator.LogSizeVectorProtocol`
   kernel);
2. the Angluin–Aspnes–Eisenstat leader-driven phase clock ticks on every
   matched pair — followers adopt the later ``(round, phase)`` reading, the
   leader advances when its partner has caught up with it;
3. the leader produces the termination signal once its completed clock wraps
   reach ``termination_rounds_factor * epochs_factor * logSize2``, announcing
   its current estimate;
4. the termination signal and announced estimate spread by epidemic.

One deliberate deviation (documented in ``DESIGN.md``): the leader's
termination threshold is checked once per round rather than only on the
leader's own interactions.  Under the matching-round scheduler the leader
interacts every round anyway (except the idle agent of an odd-``n`` round),
so the signal time differs by at most one round.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.array_simulator import (
    LogSizeVectorProtocol,
    expected_convergence_time,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.vector import VectorFields
from repro.exceptions import ProtocolError

__all__ = [
    "LeaderTerminatingVectorProtocol",
    "expected_termination_time",
]


class LeaderTerminatingVectorProtocol(LogSizeVectorProtocol):
    """Vectorised uniform terminating size estimation with an initial leader.

    Parameters
    ----------
    params:
        Constants of the underlying size-estimation protocol.
    phase_count:
        Number of phases of the leader-driven clock.  The paper requires a
        sufficiently large constant (> 288) for its high-probability bounds;
        tests and large-``n`` benchmarks use smaller values for speed.
    termination_rounds_factor:
        The leader terminates after
        ``termination_rounds_factor * epochs_factor * logSize2`` completed
        clock wraps (the paper's ``k2``).
    """

    tracked_fields = LogSizeVectorProtocol.tracked_fields + (
        "clock_phase",
        "clock_round",
    )

    def __init__(
        self,
        params: ProtocolParameters | None = None,
        phase_count: int = 289,
        termination_rounds_factor: int = 2,
    ) -> None:
        if phase_count < 3:
            raise ProtocolError(f"phase_count must be at least 3, got {phase_count}")
        if termination_rounds_factor < 1:
            raise ProtocolError(
                "termination_rounds_factor must be >= 1, got "
                f"{termination_rounds_factor}"
            )
        super().__init__(params)
        self.phase_count = phase_count
        self.termination_rounds_factor = termination_rounds_factor

    def describe(self) -> str:
        return (
            f"VectorLeaderTerminating(phases={self.phase_count}, "
            f"k2={self.termination_rounds_factor}, {self.params.describe()})"
        )

    def init_fields(self, fields: VectorFields, rng: np.random.Generator) -> None:
        super().init_fields(fields, rng)
        self.is_leader = fields.add("is_leader", bool)
        self.is_leader[0] = True
        self.clock_phase = fields.add("clock_phase", np.int64)
        self.clock_round = fields.add("clock_round", np.int64)
        self.terminated = fields.add("terminated", bool)
        self.announced = fields.add("announced", np.float64, fill=np.nan)
        self._leader_indices = np.flatnonzero(self.is_leader)

    # -- phase clock ---------------------------------------------------------

    def _advance_clock(self, agents: np.ndarray) -> None:
        phase = self.clock_phase[agents] + 1
        wrapped = phase >= self.phase_count
        self.clock_phase[agents] = np.where(wrapped, 0, phase)
        self.clock_round[agents] += wrapped

    def _tick_phase_clock(self, rec: np.ndarray, sen: np.ndarray) -> None:
        phase_r = self.clock_phase[rec]
        phase_s = self.clock_phase[sen]
        round_r = self.clock_round[rec]
        round_s = self.clock_round[sen]
        lead_r = self.is_leader[rec]
        lead_s = self.is_leader[sen]

        rec_ahead = (round_r > round_s) | ((round_r == round_s) & (phase_r > phase_s))
        sen_ahead = (round_s > round_r) | ((round_s == round_r) & (phase_s > phase_r))

        # Followers catch up to the maximum reading they observe.
        adopt_rec = (~lead_r) & sen_ahead
        if adopt_rec.any():
            self.clock_phase[rec[adopt_rec]] = phase_s[adopt_rec]
            self.clock_round[rec[adopt_rec]] = round_s[adopt_rec]
        adopt_sen = (~lead_s) & rec_ahead
        if adopt_sen.any():
            self.clock_phase[sen[adopt_sen]] = phase_r[adopt_sen]
            self.clock_round[sen[adopt_sen]] = round_r[adopt_sen]

        # The leader ticks when met by an agent that caught up with it
        # (compared on the readings as they were at the start of the round).
        advance_rec = lead_r & ~rec_ahead
        if advance_rec.any():
            self._advance_clock(rec[advance_rec])
        advance_sen = lead_s & ~sen_ahead
        if advance_sen.any():
            self._advance_clock(sen[advance_sen])

    # -- termination ---------------------------------------------------------

    def _check_leader_termination(self) -> None:
        leaders = self._leader_indices
        active = leaders[~self.terminated[leaders]]
        if active.size == 0:
            return
        threshold = (
            self.termination_rounds_factor
            * self.params.epochs_factor
            * self.log_size2[active]
        )
        firing = active[self.clock_round[active] >= threshold]
        if firing.size == 0:
            return
        self.terminated[firing] = True
        # Announce the current estimate (may still be absent; the epidemic
        # spread below fills it in from live estimates, as in the agent code).
        self.announced[firing] = self.output[firing]

    def _spread_termination(self, rec: np.ndarray, sen: np.ndarray) -> None:
        spreading = self.terminated[rec] | self.terminated[sen]
        if not spreading.any():
            return
        pair_rec = rec[spreading]
        pair_sen = sen[spreading]
        self.terminated[pair_rec] = True
        self.terminated[pair_sen] = True
        announced_r = self.announced[pair_rec]
        announced_s = self.announced[pair_sen]
        value = np.where(~np.isnan(announced_r), announced_r, announced_s)
        live = np.where(
            ~np.isnan(self.output[pair_rec]),
            self.output[pair_rec],
            self.output[pair_sen],
        )
        value = np.where(np.isnan(value), live, value)
        self.announced[pair_rec] = np.where(np.isnan(announced_r), value, announced_r)
        self.announced[pair_sen] = np.where(np.isnan(announced_s), value, announced_s)

    # -- VectorProtocol interface --------------------------------------------

    def apply_round(
        self,
        fields: VectorFields,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().apply_round(fields, rec, sen, rng)
        self._tick_phase_clock(rec, sen)
        self._check_leader_termination()
        self._spread_termination(rec, sen)

    def all_done(self, fields: VectorFields) -> bool:
        """Convergence condition: the termination signal reached every agent."""
        return bool(self.terminated.all())

    def any_terminated(self) -> bool:
        """Whether the termination signal has been produced by some agent."""
        return bool(self.terminated.any())

    def distinct_state_bound(self, fields: VectorFields) -> int:
        """Realised state count, including this protocol's own fields.

        Extends the inherited Lemma 3.9 style product with the leader-clock
        reading and the termination flag (``announced`` is excluded the same
        way the base protocol excludes its derived ``output``).
        """
        return int(
            super().distinct_state_bound(fields)
            * (fields.max_observed("clock_phase") + 1)
            * (fields.max_observed("clock_round") + 1)
            * 2  # the terminated flag
        )

    def estimates(self) -> np.ndarray:
        """The announced estimate once terminated, else the live estimate.

        Mirrors :meth:`LeaderTerminatingSizeEstimation.output`: an agent
        reports what came with the termination signal when it carried an
        estimate, and its live ``Log-Size-Estimation`` output otherwise.
        """
        return np.where(~np.isnan(self.announced), self.announced, self.output)


def expected_termination_time(
    population_size: int,
    params: ProtocolParameters,
    phase_count: int = 289,
    termination_rounds_factor: int = 2,
) -> float:
    """Rough a-priori estimate of the all-terminated time (sizes budgets).

    The leader needs ``k2 * epochs_factor * logSize2`` clock wraps of
    ``phase_count`` phases each; under the matching-round scheduler the
    leader advances one phase after roughly ``log2 n`` rounds (the new
    reading spreads by epidemic doubling until the leader's round-partner has
    caught up), i.e. ``~log2(n)/2`` units of parallel time.  The underlying
    size estimation runs concurrently, so the two contributions are summed
    only to stay conservative, plus an epidemic's worth of spreading time.
    """
    log2_n = math.log2(max(2, population_size))
    log_estimate = log2_n + params.log_size2_offset + 1
    wraps = termination_rounds_factor * params.epochs_factor * log_estimate
    per_phase_time = max(2.0, log2_n) / 2.0
    clock_time = wraps * phase_count * per_phase_time
    spread_time = 2.0 * max(2.0, log2_n)
    return expected_convergence_time(population_size, params) + clock_time + spread_time
