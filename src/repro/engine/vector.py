"""The vector engine: struct-of-arrays state + synchronous matching rounds.

PR 1 made configuration-level runs fast for *finite-state* protocols; the
protocols the paper actually headlines (``Log-Size-Estimation``, the
leader-driven terminating variant of Theorem 3.13) carry unbounded integer
fields per agent and cannot be count-compressed.  This module generalises the
one-off numpy simulator that used to live in ``core/array_simulator.py`` into
a reusable *vector engine*: per-agent state is a struct-of-arrays
(:class:`VectorFields`), the scheduler is the shared random-matching round
(one uniformly random perfect matching per round, each pair randomly
oriented), and a protocol plugs in as a :class:`VectorProtocol` — a
vectorised transition kernel applied to all matched pairs at once.

Three kinds of protocol run on it:

* :class:`~repro.core.array_simulator.LogSizeVectorProtocol` — the paper's
  Protocol 1 (the Figure 2 engine);
* :class:`~repro.core.vector_leader.LeaderTerminatingVectorProtocol` — the
  terminating-with-a-leader protocol of Theorem 3.13, scaling that
  experiment to ``n >= 10^6``;
* any :class:`~repro.protocols.base.FiniteStateProtocol`, through the
  generic :class:`FiniteStateVectorProtocol` kernel compiled from the same
  transition tables as the batched engine.  :class:`VectorFiniteStateSimulator`
  wraps that kernel behind the count-level interface shared by the other
  engines, so ``build_engine("vector", ...)`` is a drop-in fourth engine.

Scheduling is pluggable at the *round* level: the engine consumes any
:class:`~repro.engine.scheduler.RoundScheduler` (default: the shared
uniform :class:`~repro.engine.scheduler.MatchingRoundScheduler`, the
substitution documented in ``DESIGN.md`` — every agent has exactly one
interaction per round instead of the sequential scheduler's
Poisson-distributed number per time unit, preserving epidemic completion,
phase-clock behaviour and geometric-maximum averaging up to constant
factors).  Non-uniform round schedulers (``weighted``, ``two-block``,
``quiescing``) may emit fewer than ``floor(n/2)`` pairs per round; every
round still advances the parallel-time clock by its nominal
``floor(n/2) / n`` tick (idle agents cost time, so lazy or starved
populations converge later — consistent with the per-pair realisations of
the same scenarios), while ``interactions`` reports the pairs actually
executed.  Convergence is measured *exactly*: the convergence condition is
evaluated after every round (an ``O(n)`` reduction, negligible next to the
round itself), never on a coarser grid — see
:meth:`VectorSimulator.run_until_done`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.engine.configuration import Configuration
from repro.engine.scheduler import RoundScheduler, SchedulerSpec
from repro.exceptions import ConvergenceError, SimulationError
from repro.obs.recorder import RECORDER as _REC
from repro.protocols.base import FiniteStateProtocol
from repro.protocols.compiled import CompiledTransitionTable, compile_transition_table

__all__ = [
    "FiniteStateVectorProtocol",
    "VectorFields",
    "VectorFiniteStateSimulator",
    "VectorProtocol",
    "VectorRunResult",
    "VectorSimulator",
]


class VectorFields:
    """Struct-of-arrays registry of per-agent fields.

    A vector protocol allocates one numpy array per agent field through
    :meth:`add`; the registry owns the arrays (kernels mutate them in place)
    and samples running maxima of *tracked* fields for state-complexity
    reporting (Lemma 3.9), so range bookkeeping is not re-implemented per
    protocol.
    """

    def __init__(self, population_size: int) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.n = population_size
        self._arrays: dict[str, np.ndarray] = {}
        self._observed_max: dict[str, int] = {}

    def add(self, name: str, dtype, fill=0) -> np.ndarray:
        """Allocate (and return) the per-agent array for field ``name``."""
        if name in self._arrays:
            raise SimulationError(f"field {name!r} is already registered")
        array = np.full(self.n, fill, dtype=dtype)
        self._arrays[name] = array
        return array

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> tuple[str, ...]:
        """Registered field names, in registration order."""
        return tuple(self._arrays)

    # -- range tracking ------------------------------------------------------

    def track(self, *names: str) -> None:
        """Start sampling the running maximum of the given fields."""
        for name in names:
            if name not in self._arrays:
                raise SimulationError(f"cannot track unregistered field {name!r}")
            self._observed_max.setdefault(name, 0)

    def sample_ranges(self) -> None:
        """Fold the current per-field maxima into the running maxima."""
        for name in self._observed_max:
            current = int(self._arrays[name].max())
            if current > self._observed_max[name]:
                self._observed_max[name] = current

    def max_observed(self, name: str) -> int:
        """Largest sampled value of a tracked field."""
        return self._observed_max[name]


@dataclass(frozen=True)
class VectorRunResult:
    """Generic outcome of one vector-engine run.

    Protocol-specific result types (e.g.
    :class:`~repro.core.array_simulator.ArraySimulationResult`) carry richer
    fields; this is the default produced by
    :meth:`VectorProtocol.build_result`.
    """

    population_size: int
    converged: bool
    convergence_time: float | None
    rounds: int
    interactions: int
    extra: dict

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the harness and the CLI)."""
        return {
            "population_size": self.population_size,
            "converged": self.converged,
            "convergence_time": self.convergence_time,
            "rounds": self.rounds,
            "interactions": self.interactions,
            **self.extra,
        }


class VectorProtocol(ABC):
    """A protocol expressed as vectorised transition kernels.

    One instance drives one :class:`VectorSimulator` (kernels may keep array
    references and scalar flags as instance state); build a fresh instance
    per run.
    """

    #: Field names whose running maxima the simulator samples (Lemma 3.9
    #: style state-complexity reporting).  Override in subclasses.
    tracked_fields: tuple[str, ...] = ()

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""

    @abstractmethod
    def init_fields(self, fields: VectorFields, rng: np.random.Generator) -> None:
        """Allocate the per-agent arrays and set the initial configuration."""

    @abstractmethod
    def apply_round(
        self,
        fields: VectorFields,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Apply one matching round to the matched pairs ``(rec[i], sen[i])``."""

    def all_done(self, fields: VectorFields) -> bool:
        """The protocol's intrinsic convergence condition (default: none).

        Protocols without an intrinsic notion of "done" (e.g. generic
        finite-state kernels, which are driven by external predicates through
        :class:`VectorFiniteStateSimulator`) keep the default.
        """
        return False

    def result_extra(self, fields: VectorFields) -> dict:
        """Protocol-specific entries folded into :class:`VectorRunResult`."""
        return {}

    def build_result(
        self, simulator: "VectorSimulator", convergence_time: float | None
    ):
        """Build the run result (override to return a richer result type)."""
        return VectorRunResult(
            population_size=simulator.n,
            converged=convergence_time is not None,
            convergence_time=convergence_time,
            rounds=simulator.rounds,
            interactions=simulator.interactions,
            extra=self.result_extra(simulator.fields),
        )


class VectorSimulator:
    """Drive a :class:`VectorProtocol` over synchronous random-matching rounds.

    Parameters
    ----------
    protocol:
        The vectorised kernel (one fresh instance per simulator).
    population_size:
        Number of agents (at least 2).
    seed:
        Seed of the numpy generator; runs are reproducible per seed.
    scheduler:
        Round-level scheduling policy: a registered scheduler name with a
        round form (``"matching"``, ``"weighted"``, ``"two-block"``,
        ``"quiescing"``), a :class:`~repro.engine.scheduler.SchedulerSpec`
        carrying options, or a pre-built
        :class:`~repro.engine.scheduler.RoundScheduler`.  Defaults to the
        uniform matching round.
    backend:
        Array backend for the round draws (a registered name, an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for the
        process default).  The scheduler's matching/thinning draws are bound
        to the backend's kernels; protocols that accept a backend receive it
        separately at construction (see
        :class:`VectorFiniteStateSimulator`).
    """

    #: Consecutive empty rounds tolerated before the engine concludes the
    #: scheduler cannot make progress (e.g. a weighted policy whose active
    #: set keeps drawing fewer than two agents) and raises instead of
    #: spinning forever.  Time-budgeted loops terminate on their own (every
    #: round advances the clock by its nominal tick); the guard protects the
    #: executed-interaction-count loops (``run_interactions`` and friends),
    #: whose targets an empty round never approaches.
    MAX_CONSECUTIVE_EMPTY_ROUNDS = 10_000

    def __init__(
        self,
        protocol: VectorProtocol,
        population_size: int,
        seed: int | None = None,
        scheduler: "RoundScheduler | SchedulerSpec | str | None" = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.protocol = protocol
        self.n = population_size
        self.rng = np.random.default_rng(seed)
        self.backend = resolve_backend(backend)
        if isinstance(scheduler, RoundScheduler):
            if scheduler.n != population_size:
                raise SimulationError(
                    "round scheduler population size does not match the simulation"
                )
            self.scheduler = scheduler
        else:
            spec = SchedulerSpec.coerce(scheduler, default="matching")
            self.scheduler = spec.build_policy().make_round_scheduler(population_size)
        self.scheduler.bind_backend(self.backend)
        self.rounds = 0
        self._interactions = 0
        self._empty_rounds = 0
        self.fields = VectorFields(population_size)
        protocol.init_fields(self.fields, self.rng)
        self.fields.track(*protocol.tracked_fields)

    # -- round / time accounting --------------------------------------------

    @property
    def interactions(self) -> int:
        """Total interactions executed so far (summed over emitted pairs).

        Under the default matching scheduler every round executes exactly
        ``floor(n / 2)`` interactions; non-uniform round schedulers may emit
        fewer (see :attr:`parallel_time` for how time is accounted then).
        """
        return self._interactions

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far.

        Every round is one synchronous tick of ``floor(n/2) / n`` time units
        — the interval in which each agent *could* interact once —
        regardless of how many pairs the scheduler actually emitted.  Idle
        agents therefore cost time: a lazy or starved population converges
        *later*, matching the per-pair realisations of the same scenarios
        (where the global clock also keeps running while an agent idles).
        Under the default matching scheduler this coincides exactly with
        ``interactions / n``.
        """
        return self.rounds * (self.n // 2) / self.n

    def run_round(self) -> None:
        """Execute one synchronous round of scheduler-matched pairs."""
        if _REC.enabled:
            # Telemetry split: scheduler draw vs protocol apply, timed per
            # round (each is Theta(n) numpy work, so two monotonic reads per
            # round are noise).  The disabled path below is untouched.
            t0 = _REC.now_ns()
            rec, sen = self.scheduler.draw_round(self.rng, self.parallel_time)
            t1 = _REC.now_ns()
            _REC.add_time("scheduler.draw_round", t1 - t0)
            _REC.count("scheduler.rounds")
            if rec.size:
                self.protocol.apply_round(self.fields, rec, sen, self.rng)
                _REC.add_time("engine.apply_round", _REC.now_ns() - t1)
                self._empty_rounds = 0
            else:
                _REC.count("scheduler.empty_rounds")
                self._empty_rounds += 1
                if self._empty_rounds >= self.MAX_CONSECUTIVE_EMPTY_ROUNDS:
                    raise SimulationError(
                        f"round scheduler emitted no pairs for "
                        f"{self._empty_rounds} consecutive rounds (n={self.n})"
                    )
            self.rounds += 1
            self._interactions += int(rec.size)
            return
        rec, sen = self.scheduler.draw_round(self.rng, self.parallel_time)
        if rec.size:
            self.protocol.apply_round(self.fields, rec, sen, self.rng)
            self._empty_rounds = 0
        else:
            self._empty_rounds += 1
            if self._empty_rounds >= self.MAX_CONSECUTIVE_EMPTY_ROUNDS:
                raise SimulationError(
                    f"round scheduler emitted no pairs for "
                    f"{self._empty_rounds} consecutive rounds (n={self.n})"
                )
        self.rounds += 1
        self._interactions += int(rec.size)

    def all_done(self) -> bool:
        """Whether the protocol's convergence condition currently holds."""
        return self.protocol.all_done(self.fields)

    def run_until_done(
        self,
        max_parallel_time: float,
        check_every_rounds: int = 64,
        raise_on_timeout: bool = False,
    ):
        """Run until the protocol reports convergence (or the budget runs out).

        The convergence condition is evaluated after **every** round, so the
        reported ``convergence_time`` is exact to the round.  (An earlier
        version only checked every ``check_every_rounds`` rounds, overstating
        every Figure 2 time by up to ``check_every_rounds - 1`` rounds —
        ~32 units of parallel time at the paper's default, the same order as
        the quantity being plotted.)  ``check_every_rounds`` now only
        throttles the sampling of tracked field ranges, which costs one pass
        over every tracked array.

        Parameters
        ----------
        max_parallel_time:
            Budget in parallel time.
        check_every_rounds:
            How often (in rounds) the tracked field ranges are sampled.
        raise_on_timeout:
            When ``True`` a :class:`~repro.exceptions.ConvergenceError` is
            raised if the budget is exhausted; otherwise a result with
            ``converged=False`` is returned.
        """
        if check_every_rounds < 1:
            raise SimulationError("check_every_rounds must be positive")
        # Budget in nominal interactions (rounds * floor(n/2), the quantity
        # behind :attr:`parallel_time`); for the default matching round this
        # executes exactly the historical int(t * n / floor(n/2)) + 1 rounds.
        budget = int(max_parallel_time * self.n)
        half = self.n // 2
        convergence_time: float | None = None
        if _REC.enabled:
            # Instrumented twin: attribute the per-round convergence check
            # (and range sampling) separately from the draw/apply work that
            # run_round() times itself.
            while self.rounds * half <= budget:
                self.run_round()
                t0 = _REC.now_ns()
                if self.rounds % check_every_rounds == 0:
                    self.fields.sample_ranges()
                done = self.protocol.all_done(self.fields)
                _REC.add_time("engine.convergence_check", _REC.now_ns() - t0)
                _REC.count("engine.convergence_checks")
                if done:
                    convergence_time = self.parallel_time
                    break
        else:
            while self.rounds * half <= budget:
                self.run_round()
                if self.rounds % check_every_rounds == 0:
                    self.fields.sample_ranges()
                if self.protocol.all_done(self.fields):
                    convergence_time = self.parallel_time
                    break
        self.fields.sample_ranges()
        if convergence_time is None and raise_on_timeout:
            raise ConvergenceError(
                f"vectorised run did not converge within {max_parallel_time} time "
                f"(n={self.n})"
            )
        return self.protocol.build_result(self, convergence_time)


# ---------------------------------------------------------------------------
# Generic finite-state kernel + count-level adapter
# ---------------------------------------------------------------------------


class FiniteStateVectorProtocol(VectorProtocol):
    """Vectorised kernel for any :class:`FiniteStateProtocol`.

    The protocol is compiled once into the same dense index-space transition
    tables the batched engine uses
    (:func:`repro.protocols.compiled.compile_transition_table`); each round
    gathers the state pair of every matched pair, samples one outcome per
    reactive pair from the compiled distributions, and scatters the new
    states back.  Both participants of a pair are distinct agents of a
    perfect matching, so the scatter is collision-free.

    The gather→sample→scatter body is a backend kernel
    (:meth:`repro.backend.ArrayBackend.finite_round_kernel`): the default
    numpy backend preserves the historical RNG stream, the numba backend
    fuses the round into one compiled per-pair loop.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        initial_states: Sequence[Hashable] | None = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.protocol = protocol
        self.table: CompiledTransitionTable = compile_transition_table(protocol)
        self._initial_states = initial_states
        self.state: np.ndarray | None = None
        self._round_kernel = resolve_backend(backend).finite_round_kernel(self.table)

    def describe(self) -> str:
        return f"Vector({self.protocol.describe()})"

    def init_fields(self, fields: VectorFields, rng: np.random.Generator) -> None:
        state = fields.add("state", np.int64)
        if self._initial_states is not None:
            if len(self._initial_states) != fields.n:
                raise SimulationError(
                    f"initial configuration has size {len(self._initial_states)}, "
                    f"expected {fields.n}"
                )
            initial = self._initial_states
        else:
            initial = [self.protocol.initial_state(agent) for agent in range(fields.n)]
        try:
            state[:] = [self.table.index[value] for value in initial]
        except KeyError as error:
            raise SimulationError(
                f"initial state {error.args[0]!r} is outside the declared state set"
            ) from None
        self.state = state

    def apply_round(
        self,
        fields: VectorFields,
        rec: np.ndarray,
        sen: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self._round_kernel.apply(self.state, rec, sen, rng)

    def state_counts(self) -> np.ndarray:
        """Per-state agent counts, indexed like ``table.states``."""
        return np.bincount(self.state, minlength=self.table.num_states)


class VectorFiniteStateSimulator:
    """Run a finite-state protocol on the vector engine behind the count API.

    Exposes the configuration-level interface shared by
    :class:`~repro.engine.count_simulator.CountSimulator` and friends
    (``count`` / ``configuration`` / ``outputs`` / ``run_until`` /
    ``run_with_trace``), so engine-generic harness code, the CLI and the
    sweep driver treat ``"vector"`` as just another engine name.

    Granularity note: the engine advances whole matching rounds
    (``floor(n/2)`` interactions), so ``run_interactions`` / trace snapshots
    land on the next round boundary at or after the requested count;
    ``run_until`` evaluates its predicate after every round, which is the
    finest granule the scheduler has.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        scheduler: "RoundScheduler | SchedulerSpec | str | None" = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.protocol = protocol
        self.population_size = population_size
        self.backend = resolve_backend(backend)
        initial_states = None
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            initial_states = [
                state
                for state, count in sorted(
                    initial_configuration.items(), key=lambda item: repr(item[0])
                )
                for _ in range(count)
            ]
        self.kernel = FiniteStateVectorProtocol(
            protocol, initial_states=initial_states, backend=self.backend
        )
        self.simulator = VectorSimulator(
            self.kernel,
            population_size,
            seed=seed,
            scheduler=scheduler,
            backend=self.backend,
        )

    # -- accounting ----------------------------------------------------------

    @property
    def interactions(self) -> int:
        """Interactions executed so far."""
        return self.simulator.interactions

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.simulator.parallel_time

    @property
    def rounds(self) -> int:
        """Matching rounds executed so far."""
        return self.simulator.rounds

    # -- configuration queries ----------------------------------------------

    def configuration(self) -> Configuration:
        """Return the current configuration multiset."""
        counts = self.kernel.state_counts()
        return Configuration(
            {
                self.kernel.table.states[index]: int(count)
                for index, count in enumerate(counts)
                if count
            }
        )

    def count(self, state: Hashable) -> int:
        """Return the number of agents currently in ``state``."""
        index = self.kernel.table.index.get(state)
        if index is None:
            return 0
        return int((self.kernel.state == index).sum())

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        histogram: Counter = Counter()
        counts = self.kernel.state_counts()
        for index, count in enumerate(counts):
            if count:
                histogram[self.protocol.output(self.kernel.table.states[index])] += int(
                    count
                )
        return histogram

    # -- run loops -----------------------------------------------------------

    def run_round(self) -> None:
        """Execute one matching round."""
        self.simulator.run_round()

    def run_interactions(self, count: int) -> None:
        """Run whole rounds until at least ``count`` more interactions ran."""
        if count < 0:
            raise SimulationError(f"count must be non-negative, got {count}")
        target = self.interactions + count
        while self.interactions < target:
            self.simulator.run_round()

    def run_parallel_time(self, time: float) -> None:
        """Run whole rounds until ``time`` more units of parallel time passed."""
        target = self.parallel_time + time
        while self.parallel_time < target:
            self.simulator.run_round()

    def run_until(
        self,
        predicate: Callable[["VectorFiniteStateSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached.

        The predicate is checked every ``ceil(check_interval / floor(n/2))``
        rounds (default: every round — exact convergence measurement).

        Raises
        ------
        ConvergenceError
            If the predicate does not hold within ``max_parallel_time``.
        """
        if check_interval is not None and check_interval <= 0:
            raise SimulationError("check_interval must be positive")
        half = max(1, self.population_size // 2)
        rounds_between = 1 if check_interval is None else max(
            1, -(-check_interval // half)
        )
        # Budget in nominal interactions (rounds * floor(n/2), the quantity
        # behind parallel_time); a check chunk stops at the round that
        # crosses the budget, so the run never exceeds it by more than one
        # round — exactly the historical int(t*n/half)+1 rounds, for any
        # check_interval.
        budget = int(max_parallel_time * self.population_size)
        if predicate(self):
            return self.parallel_time
        while self.simulator.rounds * half <= budget:
            for _ in range(rounds_between):
                self.simulator.run_round()
                if self.simulator.rounds * half > budget:
                    break
            if predicate(self):
                return self.parallel_time
        raise ConvergenceError(
            f"predicate did not hold within {max_parallel_time} units of parallel "
            f"time (n={self.population_size})"
        )

    def run_with_trace(self, total_parallel_time: float, samples: int):
        """Run for ``total_parallel_time``; return evenly spaced snapshots.

        Each snapshot lands on the first round boundary at or after its
        exact interaction boundary (snapshots never drift by more than one
        round; see the class granularity note), and each
        :class:`~repro.engine.running.CountTracePoint` records the true
        interaction count of its snapshot.
        """
        from repro.engine.running import CountTracePoint
        from repro.types import interactions_for_time, snapshot_boundaries

        if samples < 1:
            raise SimulationError("samples must be at least 1")

        def _point() -> CountTracePoint:
            return CountTracePoint(
                interaction=self.interactions,
                parallel_time=self.parallel_time,
                configuration=self.configuration(),
            )

        half = max(1, self.population_size // 2)
        start = self.simulator.rounds * half
        total_interactions = interactions_for_time(
            total_parallel_time, self.population_size
        )
        trace = [_point()]
        for boundary in snapshot_boundaries(total_interactions, samples):
            # Absolute targets in nominal interactions (rounds * floor(n/2),
            # the parallel-time clock): a round's overshoot past one boundary
            # is not re-added to the next chunk.
            while self.simulator.rounds * half < start + boundary:
                self.simulator.run_round()
            trace.append(_point())
        return trace
