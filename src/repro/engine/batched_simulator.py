"""Batched configuration-level simulation of finite-state protocols.

:class:`~repro.engine.count_simulator.CountSimulator` already reduces a
finite-state protocol to its state counts, but it still pays a Python-level
linear scan *per interaction*.  The headline experiments need 10^9–10^10
interactions, which demands per-*batch* rather than per-interaction work.

:class:`BatchedCountSimulator` advances the configuration in batches of
``~sqrt(n)`` interactions at a time:

1. the protocol is compiled once into dense integer transition tables
   (:func:`repro.protocols.compiled.compile_transition_table`);
2. for each batch of ``Delta`` interactions, the number of interactions
   hitting each ordered *state pair* ``(i, j)`` is drawn in one numpy
   multinomial over the ``S^2`` pair probabilities
   ``c_i c_j / (n (n - 1))`` (diagonal ``c_i (c_i - 1)``) computed from the
   current counts;
3. pairs with only null transitions are skipped wholesale; for each reactive
   pair the interactions are split among the protocol's randomized outcomes
   by a second multinomial, and all resulting count deltas are applied at
   once.

This replaces ``Theta(n)`` Python work per unit of parallel time with
``Theta(S^2 polylog)`` numpy work per batch — 10–100x faster for classic
protocols (epidemic, majority, leader election) at ``n >= 10^5``.

Array backends
--------------

The draw→apply loop itself lives behind the array-backend seam
(:mod:`repro.backend`): the engine owns the counts, the accounting and the
run interface, while a *fused kernel* built by the selected backend executes
the interactions.  The default numpy backend reproduces the historical RNG
stream bitwise; the numba and native backends run the whole loop in compiled
code, an order of magnitude faster again (select with
``BatchedCountSimulator(..., backend="native")``, ``build_engine(...,
backend=...)``, ``--backend`` on the CLI or ``REPRO_BACKEND``).  See
``DESIGN.md`` (Array backends) for the kernel contract and per-backend RNG
guarantees.

Approximation and exact fallback
--------------------------------

Within a batch the pair probabilities are frozen at the batch's starting
counts, whereas the true sequential process updates them after every
interaction.  With ``Delta = Theta(sqrt(n))`` the expected number of
*reactive collisions* (an agent whose state changed being selected again in
the same batch) is ``O(Delta^2 / n) = O(1)`` per batch, so the per-batch
distortion vanishes as ``n`` grows — the standard argument behind batched
population-protocol simulators.  Two exact safeguards are applied on top
(by every backend's kernel):

* if a batch draw would consume more agents of some state than are present
  (``sum_j m[i, j] + m[j, i] > c_i`` over reactive pairs), the draw is
  discarded and the whole batch is executed by exact sequential steps; and
* the same exact step-by-step path is used whenever every reactive state
  count is below ``small_count_threshold``, where frozen-rate batching would
  distort the distribution the most (e.g. the 2-leaders endgame of
  ``L, L -> L, F``).

The sequential path samples from the *same* compiled tables, so both paths
draw from identical transition distributions.  See ``DESIGN.md``
(Schedulers) for the accompanying discussion and the cross-engine
equivalence tests in ``tests/engine/test_cross_engine.py``.

Randomness comes from a dedicated ``numpy.random.Generator`` seeded like the
other engines; runs are reproducible per seed (but seed-for-seed trajectories
differ from :class:`CountSimulator`, which uses the stdlib generator — the
engines agree in distribution, not draw-for-draw).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Hashable

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.engine.configuration import Configuration
from repro.engine.running import (
    CountTracePoint,
    run_until_predicate,
    run_with_trace,
)
from repro.engine.scheduler import SchedulerSpec
from repro.exceptions import SimulationError
from repro.obs.recorder import RECORDER as _REC
from repro.protocols.base import FiniteStateProtocol
from repro.protocols.compiled import CompiledTransitionTable, compile_transition_table
from repro.types import interactions_for_time

__all__ = ["BatchedCountSimulator"]


class BatchedCountSimulator:
    """Simulate a :class:`FiniteStateProtocol` by counts, many interactions at a time.

    Parameters
    ----------
    protocol:
        The finite-state protocol to simulate.
    population_size:
        Number of agents ``n`` (at least 2).
    seed:
        Seed for the numpy random generator; runs are reproducible per seed.
    initial_configuration:
        Optional explicit starting configuration; its size must equal
        ``population_size`` and every state must belong to the protocol's
        declared state set.
    batch_size:
        Interactions per batch.  Defaults to ``max(1, round(sqrt(n)))``,
        which keeps the expected number of within-batch reactive collisions
        ``O(1)``.
    small_count_threshold:
        When every *reactive* state (a state that participates in some
        non-null ordered pair, given the current support) has count below
        this threshold, the engine steps exactly instead of batching.
        Defaults to ``8``; set to ``0`` to disable the small-count fallback
        (the consumption guard still protects against negative counts).
    scheduler:
        Count-level scheduling policy (a registered name or a
        :class:`~repro.engine.scheduler.SchedulerSpec`).  The policy must
        expose per-state interaction weights — ``"sequential"`` (uniform,
        the default) or ``"state-weighted"`` (pair probabilities
        proportional to ``(r_i c_i)(r_j c_j)``); the batch multinomial and
        the exact fallback both honour the rates.
    backend:
        Array backend executing the hot loop: a registered name
        (``"numpy"``, ``"numba"``, ``"native"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for the
        process default (``REPRO_BACKEND`` or numpy).  An unavailable
        backend warns and falls back to numpy.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        batch_size: int | None = None,
        small_count_threshold: int = 8,
        scheduler: "SchedulerSpec | str | None" = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.protocol = protocol
        self.population_size = population_size
        self.table: CompiledTransitionTable = compile_transition_table(protocol)
        self._rng = np.random.default_rng(seed)
        size = self.table.num_states
        self._counts = np.zeros(size, dtype=np.int64)
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            for state, count in initial_configuration.items():
                position = self.table.index.get(state)
                if position is None:
                    raise SimulationError(
                        f"initial configuration contains state {state!r} outside "
                        f"the protocol's state set"
                    )
                self._counts[position] = count
        else:
            for agent_id in range(population_size):
                state = protocol.initial_state(agent_id)
                position = self.table.index.get(state)
                if position is None:
                    raise SimulationError(
                        f"protocol initial state {state!r} is outside its declared "
                        f"state set"
                    )
                self._counts[position] += 1
        if batch_size is None:
            batch_size = max(1, round(math.sqrt(population_size)))
        elif batch_size < 1:
            raise SimulationError(f"batch size must be positive, got {batch_size}")
        self.batch_size = batch_size
        if small_count_threshold < 0:
            raise SimulationError(
                f"small_count_threshold must be non-negative, got {small_count_threshold}"
            )
        self.small_count_threshold = small_count_threshold
        self.scheduler_spec = SchedulerSpec.coerce(scheduler)
        # None = uniform rates (the historical code path, draw-for-draw
        # stream-preserving); else one activity rate per compiled state.
        self._state_rates = self.scheduler_spec.build_policy().state_rates(
            self.table.states
        )
        self.interactions = 0
        #: Diagnostics: batches applied via multinomial draws vs. executed
        #: by the exact sequential fallback.
        self.batched_batches = 0
        self.fallback_batches = 0
        self._states_seen: set[Hashable] = {
            self.table.states[position] for position in np.nonzero(self._counts)[0]
        }
        self.backend = resolve_backend(backend)
        self._kernel = self.backend.batched_kernel(
            self.table,
            self._state_rates,
            population_size,
            small_count_threshold,
            self._rng,
        )

    # -- inspection -----------------------------------------------------------

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.interactions / self.population_size

    def configuration(self) -> Configuration:
        """Return the current configuration (immutable copy)."""
        return Configuration(
            {
                self.table.states[position]: int(count)
                for position, count in enumerate(self._counts)
                if count > 0
            }
        )

    def count(self, state: Hashable) -> int:
        """Return the current count of ``state`` (0 for unknown states)."""
        position = self.table.index.get(state)
        if position is None:
            return 0
        return int(self._counts[position])

    def states_seen(self) -> frozenset[Hashable]:
        """All states that have had positive count at any point of the run."""
        seen = set(self._states_seen)
        seen.update(
            self.table.states[position]
            for position in np.nonzero(self._kernel.seen)[0]
        )
        return frozenset(seen)

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        histogram: Counter = Counter()
        for position, count in enumerate(self._counts):
            if count > 0:
                histogram[self.protocol.output(self.table.states[position])] += int(count)
        return histogram

    # -- public running interface (mirrors CountSimulator) ---------------------

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions.

        The fused draw→apply work happens in the backend kernel; this loop
        only does the accounting.  The numpy reference kernel advances one
        batch per call (preserving the historical per-batch RNG stream),
        the JIT kernels advance everything in a single call.
        """
        if count < 0:
            raise SimulationError(f"interaction count must be non-negative, got {count}")
        remaining = count
        if _REC.enabled:
            # Instrumented twin: time the fused backend kernel dispatch and
            # mirror the batch counters into the recorder.  Guarded once per
            # run_interactions call; the disabled branch below is the
            # historical loop untouched.
            t0 = _REC.now_ns()
            advances = batched_delta = fallback_delta = 0
            while remaining > 0:
                done, batched, fallback = self._kernel.advance(
                    self._counts, remaining, self.batch_size, self._rng
                )
                self.interactions += done
                self.batched_batches += batched
                self.fallback_batches += fallback
                remaining -= done
                advances += 1
                batched_delta += batched
                fallback_delta += fallback
            _REC.add_time("backend.kernel_advance", _REC.now_ns() - t0)
            _REC.count("backend.kernel_advances", advances)
            _REC.count("engine.batched_batches", batched_delta)
            _REC.count("engine.fallback_batches", fallback_delta)
            _REC.count("engine.interactions", count)
        else:
            while remaining > 0:
                done, batched, fallback = self._kernel.advance(
                    self._counts, remaining, self.batch_size, self._rng
                )
                self.interactions += done
                self.batched_batches += batched
                self.fallback_batches += fallback
                remaining -= done

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.run_interactions(interactions_for_time(time, self.population_size))

    def run_until(
        self,
        predicate: Callable[["BatchedCountSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached.

        The predicate is evaluated every ``check_interval`` interactions
        (default: every ``n`` interactions, i.e. once per unit of parallel
        time).

        Raises
        ------
        ConvergenceError
            If the predicate does not hold within ``max_parallel_time``.
        """
        return run_until_predicate(self, predicate, max_parallel_time, check_interval)

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time``; return evenly spaced snapshots.

        See :func:`repro.engine.running.run_with_trace`: the initial
        configuration plus the exact checkpoints of
        :func:`repro.types.snapshot_boundaries`.
        """
        return run_with_trace(self, total_parallel_time, samples)
