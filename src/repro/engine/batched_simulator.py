"""Batched configuration-level simulation of finite-state protocols.

:class:`~repro.engine.count_simulator.CountSimulator` already reduces a
finite-state protocol to its state counts, but it still pays a Python-level
linear scan *per interaction*.  The headline experiments need 10^9–10^10
interactions, which demands per-*batch* rather than per-interaction work.

:class:`BatchedCountSimulator` advances the configuration in batches of
``~sqrt(n)`` interactions at a time:

1. the protocol is compiled once into dense integer transition tables
   (:func:`repro.protocols.compiled.compile_transition_table`);
2. for each batch of ``Delta`` interactions, the number of interactions
   hitting each ordered *state pair* ``(i, j)`` is drawn in one numpy
   multinomial over the ``S^2`` pair probabilities
   ``c_i c_j / (n (n - 1))`` (diagonal ``c_i (c_i - 1)``) computed from the
   current counts;
3. pairs with only null transitions are skipped wholesale; for each reactive
   pair the interactions are split among the protocol's randomized outcomes
   by a second multinomial, and all resulting count deltas are applied at
   once.

This replaces ``Theta(n)`` Python work per unit of parallel time with
``Theta(S^2 polylog)`` numpy work per batch — 10–100x faster for classic
protocols (epidemic, majority, leader election) at ``n >= 10^5``.

Approximation and exact fallback
--------------------------------

Within a batch the pair probabilities are frozen at the batch's starting
counts, whereas the true sequential process updates them after every
interaction.  With ``Delta = Theta(sqrt(n))`` the expected number of
*reactive collisions* (an agent whose state changed being selected again in
the same batch) is ``O(Delta^2 / n) = O(1)`` per batch, so the per-batch
distortion vanishes as ``n`` grows — the standard argument behind batched
population-protocol simulators.  Two exact safeguards are applied on top:

* if a batch draw would consume more agents of some state than are present
  (``sum_j m[i, j] + m[j, i] > c_i`` over reactive pairs), the draw is
  discarded and the whole batch is executed by exact sequential steps; and
* the same exact step-by-step path is used whenever every reactive state
  count is below ``small_count_threshold``, where frozen-rate batching would
  distort the distribution the most (e.g. the 2-leaders endgame of
  ``L, L -> L, F``).

The sequential path samples from the *same* compiled tables, so both paths
draw from identical transition distributions.  See ``DESIGN.md``
(Schedulers) for the accompanying discussion and the cross-engine
equivalence tests in ``tests/engine/test_cross_engine.py``.

Randomness comes from a dedicated ``numpy.random.Generator`` seeded like the
other engines; runs are reproducible per seed (but seed-for-seed trajectories
differ from :class:`CountSimulator`, which uses the stdlib generator — the
engines agree in distribution, not draw-for-draw).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import Counter
from typing import Callable, Hashable

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.running import (
    CountTracePoint,
    run_until_predicate,
    run_with_trace,
)
from repro.engine.scheduler import SchedulerSpec
from repro.exceptions import SimulationError
from repro.protocols.base import FiniteStateProtocol
from repro.protocols.compiled import CompiledTransitionTable, compile_transition_table
from repro.types import interactions_for_time

__all__ = ["BatchedCountSimulator"]


class BatchedCountSimulator:
    """Simulate a :class:`FiniteStateProtocol` by counts, many interactions at a time.

    Parameters
    ----------
    protocol:
        The finite-state protocol to simulate.
    population_size:
        Number of agents ``n`` (at least 2).
    seed:
        Seed for the numpy random generator; runs are reproducible per seed.
    initial_configuration:
        Optional explicit starting configuration; its size must equal
        ``population_size`` and every state must belong to the protocol's
        declared state set.
    batch_size:
        Interactions per batch.  Defaults to ``max(1, round(sqrt(n)))``,
        which keeps the expected number of within-batch reactive collisions
        ``O(1)``.
    small_count_threshold:
        When every *reactive* state (a state that participates in some
        non-null ordered pair, given the current support) has count below
        this threshold, the engine steps exactly instead of batching.
        Defaults to ``8``; set to ``0`` to disable the small-count fallback
        (the consumption guard still protects against negative counts).
    scheduler:
        Count-level scheduling policy (a registered name or a
        :class:`~repro.engine.scheduler.SchedulerSpec`).  The policy must
        expose per-state interaction weights — ``"sequential"`` (uniform,
        the default) or ``"state-weighted"`` (pair probabilities
        proportional to ``(r_i c_i)(r_j c_j)``); the batch multinomial and
        the exact fallback both honour the rates.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        batch_size: int | None = None,
        small_count_threshold: int = 8,
        scheduler: "SchedulerSpec | str | None" = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.protocol = protocol
        self.population_size = population_size
        self.table: CompiledTransitionTable = compile_transition_table(protocol)
        self._rng = np.random.default_rng(seed)
        size = self.table.num_states
        self._counts = np.zeros(size, dtype=np.int64)
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            for state, count in initial_configuration.items():
                position = self.table.index.get(state)
                if position is None:
                    raise SimulationError(
                        f"initial configuration contains state {state!r} outside "
                        f"the protocol's state set"
                    )
                self._counts[position] = count
        else:
            for agent_id in range(population_size):
                state = protocol.initial_state(agent_id)
                position = self.table.index.get(state)
                if position is None:
                    raise SimulationError(
                        f"protocol initial state {state!r} is outside its declared "
                        f"state set"
                    )
                self._counts[position] += 1
        if batch_size is None:
            batch_size = max(1, round(math.sqrt(population_size)))
        elif batch_size < 1:
            raise SimulationError(f"batch size must be positive, got {batch_size}")
        self.batch_size = batch_size
        if small_count_threshold < 0:
            raise SimulationError(
                f"small_count_threshold must be non-negative, got {small_count_threshold}"
            )
        self.small_count_threshold = small_count_threshold
        self.scheduler_spec = SchedulerSpec.coerce(scheduler)
        # None = uniform rates (the historical code path, draw-for-draw
        # stream-preserving); else one activity rate per compiled state.
        self._state_rates = self.scheduler_spec.build_policy().state_rates(
            self.table.states
        )
        self.interactions = 0
        #: Diagnostics: batches applied via multinomial draws vs. executed
        #: by the exact sequential fallback.
        self.batched_batches = 0
        self.fallback_batches = 0
        self._states_seen: set[Hashable] = {
            self.table.states[position] for position in np.nonzero(self._counts)[0]
        }
        self._exact_table = self._build_exact_table()

    def _build_exact_table(self) -> list[list[tuple | None]]:
        """Pure-Python view of the compiled tables for the exact fallback.

        ``[i][j]`` is ``None`` for null pairs, else ``(outcomes, randomized)``
        where ``outcomes`` is a list of ``(cumulative_probability,
        receiver_out, sender_out)`` and ``randomized`` says whether an
        outcome draw is needed at all.  Numpy scalar indexing per interaction
        is an order of magnitude slower than list access, which matters in
        the fallback regimes where every interaction goes through this path.
        """
        table = self.table
        size = table.num_states
        exact: list[list[tuple | None]] = []
        for i in range(size):
            row: list[tuple | None] = []
            for j in range(size):
                if table.is_null[i, j]:
                    row.append(None)
                    continue
                outcomes = []
                mass = 0.0
                for k in range(int(table.outcome_count[i, j])):
                    mass += float(table.outcome_probability[i, j, k])
                    outcomes.append(
                        (
                            mass,
                            int(table.outcome_receiver[i, j, k]),
                            int(table.outcome_sender[i, j, k]),
                        )
                    )
                randomized = len(outcomes) > 1 or table.null_probability[i, j] > 0.0
                row.append((outcomes, randomized))
            exact.append(row)
        return exact

    # -- inspection -----------------------------------------------------------

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.interactions / self.population_size

    def configuration(self) -> Configuration:
        """Return the current configuration (immutable copy)."""
        return Configuration(
            {
                self.table.states[position]: int(count)
                for position, count in enumerate(self._counts)
                if count > 0
            }
        )

    def count(self, state: Hashable) -> int:
        """Return the current count of ``state`` (0 for unknown states)."""
        position = self.table.index.get(state)
        if position is None:
            return 0
        return int(self._counts[position])

    def states_seen(self) -> frozenset[Hashable]:
        """All states that have had positive count at any point of the run."""
        return frozenset(self._states_seen)

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        histogram: Counter = Counter()
        for position, count in enumerate(self._counts):
            if count > 0:
                histogram[self.protocol.output(self.table.states[position])] += int(count)
        return histogram

    # -- batched stepping -----------------------------------------------------

    def _pair_probabilities(self) -> np.ndarray:
        """Ordered state-pair selection probabilities at the current counts.

        Uniform policy: ``c_i c_j`` (diagonal ``c_i (c_i - 1)``).  A
        state-weighted policy scales every agent of state ``s`` by its rate
        ``r_s``: off-diagonal ``(r_i c_i)(r_j c_j)``, diagonal
        ``(r_i c_i) r_i (c_i - 1)``.
        """
        counts = self._counts.astype(np.float64)
        if self._state_rates is None:
            weights = np.outer(counts, counts)
            np.fill_diagonal(weights, counts * (counts - 1.0))
        else:
            scaled = self._state_rates * counts
            weights = np.outer(scaled, scaled)
            np.fill_diagonal(weights, scaled * self._state_rates * (counts - 1.0))
        total = weights.sum()
        if total <= 0.0:
            raise SimulationError(
                "scheduler assigns zero total weight to the current configuration"
            )
        # Normalising by the actual float sum (exactly n(n-1) in exact
        # arithmetic for the uniform policy) keeps the vector a valid
        # multinomial pvals argument despite rounding.
        return weights / total

    def _reactive_counts_small(self) -> bool:
        """Whether every reactive state currently has a dangerously small count.

        A state is *reactive* here if it is present and participates in some
        non-null ordered pair with another *present* state.  When all such
        counts are below the threshold, frozen-rate batching distorts the
        most (each reaction changes the rates by a constant factor), so the
        engine steps exactly instead.
        """
        if self.small_count_threshold == 0:
            return False
        present = self._counts > 0
        reactive = ~self.table.is_null & present[:, None] & present[None, :]
        if not reactive.any():
            return False
        involved = reactive.any(axis=1) | reactive.any(axis=0)
        return bool(np.all(self._counts[involved] < self.small_count_threshold))

    def _advance_batch(self, batch: int) -> None:
        """Advance exactly ``batch`` interactions (batched or exact)."""
        if self._reactive_counts_small():
            self.fallback_batches += 1
            self._run_exact(batch)
            return
        pair_counts = self._rng.multinomial(
            batch, self._pair_probabilities().ravel()
        ).reshape(self.table.outcome_count.shape)
        reactive = np.where(self.table.is_null, 0, pair_counts)
        if not reactive.any():
            self.interactions += batch
            self.batched_batches += 1
            return
        consumed = reactive.sum(axis=1) + reactive.sum(axis=0)
        if np.any(consumed > self._counts):
            # The frozen-rate draw used more agents of some state than exist;
            # the batch cannot be applied consistently, so execute it exactly.
            self.fallback_batches += 1
            self._run_exact(batch)
            return
        delta = np.zeros_like(self._counts)
        rows, cols = np.nonzero(reactive)
        for i, j in zip(rows.tolist(), cols.tolist()):
            self._apply_pair_events(i, j, int(reactive[i, j]), delta)
        self._counts += delta
        self.interactions += batch
        self.batched_batches += 1

    def _apply_pair_events(self, i: int, j: int, occurrences: int, delta: np.ndarray) -> None:
        """Split ``occurrences`` interactions of pair ``(i, j)`` among outcomes."""
        table = self.table
        outcome_count = int(table.outcome_count[i, j])
        probabilities = table.outcome_probability[i, j, :outcome_count]
        null_mass = float(table.null_probability[i, j])
        if null_mass > 0.0 or outcome_count > 1:
            pvals = np.append(probabilities, null_mass)
            split = self._rng.multinomial(occurrences, pvals / pvals.sum())[:outcome_count]
        else:
            split = (occurrences,)
        for k, events in enumerate(split):
            events = int(events)
            if events == 0:
                continue
            receiver_out = int(table.outcome_receiver[i, j, k])
            sender_out = int(table.outcome_sender[i, j, k])
            delta[i] -= events
            delta[j] -= events
            delta[receiver_out] += events
            delta[sender_out] += events
            self._states_seen.add(table.states[receiver_out])
            self._states_seen.add(table.states[sender_out])

    # -- exact sequential fallback --------------------------------------------

    def _run_exact(self, count: int) -> None:
        """Execute ``count`` interactions one at a time, exactly.

        Works on plain Python lists with thresholds pre-drawn in one block,
        so the exact path costs the same as the count engine's per-step loop
        rather than paying numpy scalar/RNG overhead every interaction.  The
        receiver is sampled by count weight, the sender among the remaining
        ``n - 1`` agents (the threshold shift is the same construction as
        :meth:`CountSimulator._sample_state_weighted`).  Under a
        state-weighted policy the same loop runs on rate-scaled float
        weights (:meth:`_run_exact_weighted`).
        """
        if self._state_rates is not None:
            self._run_exact_weighted(count)
            return
        n = self.population_size
        counts = self._counts.tolist()
        cumulative = []
        total = 0
        for value in counts:
            total += value
            cumulative.append(total)
        receiver_draws = self._rng.integers(0, n, size=count).tolist()
        sender_draws = self._rng.integers(0, n - 1, size=count).tolist()
        exact = self._exact_table
        for threshold, co_threshold in zip(receiver_draws, sender_draws):
            receiver = bisect_right(cumulative, threshold)
            if co_threshold >= cumulative[receiver] - 1:
                co_threshold += 1
            sender = bisect_right(cumulative, co_threshold)
            entry = exact[receiver][sender]
            if entry is None:
                continue
            outcomes, randomized = entry
            if randomized:
                draw = self._rng.random()
                for mass, receiver_out, sender_out in outcomes:
                    if draw < mass:
                        break
                else:
                    continue  # residual mass = null transition
            else:
                _, receiver_out, sender_out = outcomes[0]
            counts[receiver] -= 1
            counts[sender] -= 1
            counts[receiver_out] += 1
            counts[sender_out] += 1
            self._states_seen.add(self.table.states[receiver_out])
            self._states_seen.add(self.table.states[sender_out])
            total = 0
            cumulative = []
            for value in counts:
                total += value
                cumulative.append(total)
        self._counts[:] = counts
        self.interactions += count

    def _run_exact_weighted(self, count: int) -> None:
        """Exact per-interaction stepping under per-state activity rates.

        Samples the ordered pair of distinct agents ``(a, b)`` with
        probability proportional to ``r_a r_b`` — the *same* joint
        distribution the batch multinomial of :meth:`_pair_probabilities`
        draws from, so the two paths stay interchangeable within one run.
        Implemented as two independent rate-weighted state draws with
        same-agent rejection: a same-state draw ``(i, i)`` is the same agent
        with probability ``1 / c_i`` and is then redrawn.
        """
        rates = self._state_rates.tolist()
        counts = self._counts.tolist()

        def _cumulative() -> tuple[list[float], float, int]:
            cumulative: list[float] = []
            total = 0.0
            positive_agents = 0
            for rate, value in zip(rates, counts):
                total += rate * value
                cumulative.append(total)
                if rate > 0:
                    positive_agents += value
            return cumulative, total, positive_agents

        def _draw_state() -> int:
            return min(
                bisect_right(cumulative, self._rng.random() * total),
                len(counts) - 1,
            )

        cumulative, total, positive_agents = _cumulative()
        exact = self._exact_table
        for _ in range(count):
            if total <= 0.0 or positive_agents < 2:
                raise SimulationError(
                    "state-weighted scheduler: fewer than two agents have a "
                    "positive rate; no ordered pair can be selected"
                )
            while True:
                receiver = _draw_state()
                sender = _draw_state()
                if receiver != sender:
                    break
                if counts[receiver] >= 2 and (
                    self._rng.random() * counts[receiver] >= 1.0
                ):
                    break
            entry = exact[receiver][sender]
            if entry is None:
                continue
            outcomes, randomized = entry
            if randomized:
                draw = self._rng.random()
                for mass, receiver_out, sender_out in outcomes:
                    if draw < mass:
                        break
                else:
                    continue  # residual mass = null transition
            else:
                _, receiver_out, sender_out = outcomes[0]
            counts[receiver] -= 1
            counts[sender] -= 1
            counts[receiver_out] += 1
            counts[sender_out] += 1
            self._states_seen.add(self.table.states[receiver_out])
            self._states_seen.add(self.table.states[sender_out])
            cumulative, total, positive_agents = _cumulative()
        self._counts[:] = counts
        self.interactions += count

    # -- public running interface (mirrors CountSimulator) ---------------------

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions."""
        if count < 0:
            raise SimulationError(f"interaction count must be non-negative, got {count}")
        remaining = count
        while remaining > 0:
            batch = min(self.batch_size, remaining)
            self._advance_batch(batch)
            remaining -= batch

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.run_interactions(interactions_for_time(time, self.population_size))

    def run_until(
        self,
        predicate: Callable[["BatchedCountSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached.

        The predicate is evaluated every ``check_interval`` interactions
        (default: every ``n`` interactions, i.e. once per unit of parallel
        time).

        Raises
        ------
        ConvergenceError
            If the predicate does not hold within ``max_parallel_time``.
        """
        return run_until_predicate(self, predicate, max_parallel_time, check_interval)

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time``; return evenly spaced snapshots.

        See :func:`repro.engine.running.run_with_trace`: the initial
        configuration plus the exact checkpoints of
        :func:`repro.types.snapshot_boundaries`.
        """
        return run_with_trace(self, total_parallel_time, samples)
