"""Interaction scheduling: per-pair streams, matching rounds and policies.

The paper's model fixes one scheduler — each step selects a uniformly random
ordered pair of distinct agents — and every claim the repo reproduces is
stated relative to it.  This module makes the scheduler a first-class,
pluggable subsystem so the robustness of those claims can be probed under
*non-uniform* scenarios without forking an engine.

Three views of a scheduler
--------------------------

Different engines consume scheduling at different granularities, so a
scheduler *policy* can expose up to three interfaces:

``pair``
    A stream of ordered agent-index pairs (:class:`InteractionScheduler`),
    consumed one interaction at a time by the agent engine
    (:class:`repro.engine.simulator.Simulation`).
``counts``
    A distribution over ordered *state* pairs given the current counts,
    consumed by the count-level engines
    (:class:`~repro.engine.count_simulator.CountSimulator`,
    :class:`~repro.engine.batched_simulator.BatchedCountSimulator`).  Only
    agent-anonymous policies can be count-compressed: a policy whose rates
    depend on agent identity (lazy subpopulations, communities, starvation
    windows) distinguishes agents that share a state, which the count
    representation cannot express.  The interface is a per-state activity
    rate: pair probabilities are proportional to ``(r_i c_i)(r_j c_j)``
    (uniform = all rates 1, recovering the paper's ``c_i c_j / n(n-1)``).
``rounds``
    A batch of disjoint pairs per synchronous round
    (:class:`RoundScheduler`), consumed by the vector engine
    (:class:`repro.engine.vector.VectorSimulator`).

:class:`SchedulerSpec` is the frozen, picklable description used by the
harness (it participates in sweep cache keys) and the CLI
(``--scheduler NAME --scheduler-opt key=value``); ``spec.build_policy()``
instantiates the named :class:`SchedulerPolicy` from the registry.

Shipped policies
----------------

* ``sequential`` — the paper's uniform ordered-pair scheduler (pair +
  counts).
* ``matching`` — synchronous uniform random matching, one interaction per
  agent per round (pair + rounds); the vector engine's default and the
  substitution documented in ``DESIGN.md``.
* ``weighted`` — per-agent contact rates: a ``lazy_fraction`` of the agents
  participates at rate ``lazy_rate`` (pair + rounds).
* ``two-block`` — a two-community population: interactions stay inside an
  agent's block with probability ``intra``, interpolating from well-mixed to
  nearly partitioned (pair + rounds).
* ``quiescing`` — an adversarial starvation window: a chosen ``fraction`` of
  the agents is excluded from all interactions for ``duration`` units of
  parallel time starting at ``start`` (pair + rounds).
* ``state-weighted`` — per-*state* activity rates (counts); the
  agent-anonymous non-uniform policy that the count and batched engines can
  run exactly.

One matching implementation
---------------------------

Both matching code paths — the per-pair :class:`RandomMatchingScheduler` and
the vector engine's round loop — draw from the single shared
:func:`draw_matching_arrays`; a regression test pins that the same numpy
seed yields the identical matching sequence through either path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, ClassVar, Hashable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.rng import RandomSource
from repro.types import InteractionPair

__all__ = [
    "SCHEDULER_NAMES",
    "InteractionScheduler",
    "MatchingRoundScheduler",
    "QuiescingPairScheduler",
    "QuiescingRoundScheduler",
    "RandomMatchingScheduler",
    "RoundScheduler",
    "SchedulerPolicy",
    "SchedulerSpec",
    "SequentialScheduler",
    "TwoBlockPairScheduler",
    "TwoBlockRoundScheduler",
    "WeightedMatchingRoundScheduler",
    "WeightedPairScheduler",
    "coerce_policy_options",
    "draw_matching_arrays",
    "get_scheduler_policy",
    "scheduler_names",
]


# ---------------------------------------------------------------------------
# The one matching implementation (shared by every matching code path)
# ---------------------------------------------------------------------------


def draw_matching_arrays(
    members: int | np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw one uniform random matching with uniformly oriented pairs.

    ``members`` is either the population size ``n`` (match everyone) or an
    array of agent indices (match only those agents).  Returns
    ``(receivers, senders)`` index arrays of length ``floor(m / 2)``; when
    ``m`` is odd one member idles.

    This is the *single* implementation behind both the per-pair
    :class:`RandomMatchingScheduler` and the vector engine's round loop
    (via :class:`MatchingRoundScheduler`); the draw order — one permutation,
    then one uniform array of orientation coins — is part of the
    reproducibility contract (seeded vector-engine trajectories).
    """
    order = rng.permutation(members)
    half = order.size // 2
    first = order[:half]
    second = order[half : 2 * half]
    orient = rng.random(half) < 0.5
    receivers = np.where(orient, first, second)
    senders = np.where(orient, second, first)
    return receivers, senders


# ---------------------------------------------------------------------------
# Per-pair schedulers (the agent engine's interface)
# ---------------------------------------------------------------------------


class InteractionScheduler(ABC):
    """Base class for per-pair interaction schedulers.

    A scheduler is bound to a population size ``n`` and a random source, and
    yields an unbounded stream of ordered interaction pairs.
    """

    def __init__(self, n: int, rng: RandomSource) -> None:
        if n < 2:
            raise SimulationError(f"population must contain at least 2 agents, got {n}")
        self.n = n
        self.rng = rng
        self._emitted = 0

    @property
    def interactions_emitted(self) -> int:
        """Number of interaction pairs produced so far."""
        return self._emitted

    @property
    def parallel_time_elapsed(self) -> float:
        """Parallel time corresponding to the interactions emitted so far."""
        return self._emitted / self.n

    @abstractmethod
    def _next_pair(self) -> InteractionPair:
        """Produce the next interaction pair (implemented by subclasses)."""

    def next_pair(self) -> InteractionPair:
        """Return the next scheduled interaction pair."""
        pair = self._next_pair()
        self._emitted += 1
        return pair

    def pairs(self) -> Iterator[InteractionPair]:
        """Iterate over scheduled pairs forever."""
        while True:
            yield self.next_pair()


class SequentialScheduler(InteractionScheduler):
    """The paper's scheduler: each interaction picks a uniform ordered pair.

    The receiver and the sender are distinct agents chosen uniformly at random
    among all ``n * (n - 1)`` ordered pairs, independently for every
    interaction.
    """

    def _next_pair(self) -> InteractionPair:
        receiver, sender = self.rng.uniform_pair(self.n)
        return InteractionPair(receiver=receiver, sender=sender)


class RandomMatchingScheduler(InteractionScheduler):
    """Synchronous random-matching scheduler, emitted pair by pair.

    Each round is one uniformly random matching of the population with
    uniformly oriented pairs, drawn through the shared
    :func:`draw_matching_arrays` implementation (the same code path as the
    vector engine's round loop) and then emitted one pair at a time so the
    interface matches the sequential scheduler.  When ``n`` is odd the last
    agent idles for that round.

    Every agent participates in exactly one interaction per round (rather
    than a Poisson-distributed number under the sequential scheduler), so one
    round corresponds to ``floor(n / 2) / n ~ 1/2`` units of parallel time.
    The approximation preserves epidemic completion times and phase-clock
    behaviour up to constant factors; see ``DESIGN.md`` (Schedulers).

    The matching draws come from a numpy generator — seeded from the shared
    :class:`~repro.rng.RandomSource` unless ``matching_rng`` is supplied
    directly (the regression tests use that hook to pin both code paths to
    one stream).
    """

    def __init__(
        self,
        n: int,
        rng: RandomSource,
        matching_rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(n, rng)
        self._matching_rng = (
            matching_rng
            if matching_rng is not None
            else np.random.default_rng(rng.randrange(2**63))
        )
        self._queue: list[InteractionPair] = []
        self._rounds = 0

    @property
    def rounds_completed(self) -> int:
        """Number of full matching rounds drawn so far."""
        return self._rounds

    def _refill(self) -> None:
        receivers, senders = draw_matching_arrays(self.n, self._matching_rng)
        batch = [
            InteractionPair(receiver=int(receiver), sender=int(sender))
            for receiver, sender in zip(receivers, senders)
        ]
        # Reverse so .pop() emits pairs in matching order.
        self._queue = list(reversed(batch))
        self._rounds += 1

    def _next_pair(self) -> InteractionPair:
        if not self._queue:
            self._refill()
        return self._queue.pop()


class _StaticRatePairScheduler(InteractionScheduler):
    """Per-pair sampling from static per-agent contact rates.

    The ordered pair of distinct agents ``(a, b)`` is selected with
    probability proportional to the *product* of the agents' rates
    ``r_a r_b`` — the same joint model as the count-level
    ``state-weighted`` policy, realised by two independent rate-weighted
    draws with same-agent rejection.
    """

    def __init__(self, n: int, rng: RandomSource, rates: Sequence[float]) -> None:
        super().__init__(n, rng)
        if len(rates) != n:
            raise SimulationError(
                f"rate vector has length {len(rates)}, expected {n}"
            )
        if any(rate < 0 for rate in rates):
            raise SimulationError("per-agent rates must be non-negative")
        self._rates = [float(rate) for rate in rates]
        self._cumulative: list[float] = []
        total = 0.0
        for rate in self._rates:
            total += rate
            self._cumulative.append(total)
        self._total = total
        if sum(1 for rate in self._rates if rate > 0) < 2:
            raise SimulationError(
                "a weighted scheduler needs at least two agents with positive rate"
            )

    def _sample(self) -> int:
        threshold = self.rng.random() * self._total
        return min(bisect_right(self._cumulative, threshold), self.n - 1)

    def _next_pair(self) -> InteractionPair:
        while True:
            receiver = self._sample()
            sender = self._sample()
            if receiver != sender:
                return InteractionPair(receiver=receiver, sender=sender)


class WeightedPairScheduler(_StaticRatePairScheduler):
    """Non-uniform contact rates: a lazy subpopulation interacts rarely.

    The first ``floor(lazy_fraction * n)`` agents are *lazy* and participate
    with rate ``lazy_rate``; the rest participate with rate 1.  (Which agents
    are lazy is a deterministic prefix of the id space so the per-pair and
    round-based implementations starve the same subset.)
    """

    def __init__(
        self,
        n: int,
        rng: RandomSource,
        lazy_fraction: float = 0.5,
        lazy_rate: float = 0.1,
    ) -> None:
        lazy_count = int(lazy_fraction * n)
        rates = [lazy_rate] * lazy_count + [1.0] * (n - lazy_count)
        super().__init__(n, rng, rates)
        self.lazy_count = lazy_count
        self.lazy_rate = lazy_rate


class TwoBlockPairScheduler(InteractionScheduler):
    """Two-community population: interactions prefer an agent's own block.

    Agents ``[0, a)`` form block A (``a = max(1, floor(split * n))``) and the
    rest block B.  Each interaction picks a uniform receiver, stays inside
    its block with probability ``intra`` (uniform partner among the block's
    other members) and crosses to the other block otherwise.  ``intra``
    interpolates from well-mixed to nearly partitioned; a single-member
    block always crosses.
    """

    def __init__(
        self,
        n: int,
        rng: RandomSource,
        intra: float = 0.9,
        split: float = 0.5,
    ) -> None:
        super().__init__(n, rng)
        if not 0.0 <= intra <= 1.0:
            raise SimulationError(f"intra-block probability must be in [0, 1], got {intra}")
        if not 0.0 < split < 1.0:
            raise SimulationError(f"block split must be in (0, 1), got {split}")
        self.block_boundary = min(max(1, int(split * n)), n - 1)
        self.intra = intra

    def _block_of(self, agent: int) -> tuple[int, int]:
        """Return ``(start, size)`` of the agent's block."""
        if agent < self.block_boundary:
            return 0, self.block_boundary
        return self.block_boundary, self.n - self.block_boundary

    def _next_pair(self) -> InteractionPair:
        receiver = self.rng.randrange(self.n)
        start, size = self._block_of(receiver)
        same_block = size >= 2 and self.rng.random() < self.intra
        if same_block:
            sender = start + self.rng.randrange(size - 1)
            if sender >= receiver:
                sender += 1
        else:
            other_start = self.block_boundary if start == 0 else 0
            other_size = self.n - size
            sender = other_start + self.rng.randrange(other_size)
        return InteractionPair(receiver=receiver, sender=sender)


class QuiescingPairScheduler(InteractionScheduler):
    """Adversarial starvation: a subset of agents is frozen for a window.

    The first ``floor(fraction * n)`` agents are excluded from every
    interaction while the elapsed parallel time lies in
    ``[start, start + duration)``; outside the window the scheduler is the
    paper's uniform one.  Directly stress-tests protocols whose correctness
    argument assumes every agent keeps interacting (phase clocks,
    termination detection).
    """

    def __init__(
        self,
        n: int,
        rng: RandomSource,
        fraction: float = 0.5,
        start: float = 0.0,
        duration: float = 16.0,
    ) -> None:
        super().__init__(n, rng)
        if not 0.0 <= fraction < 1.0:
            raise SimulationError(f"starved fraction must be in [0, 1), got {fraction}")
        if start < 0 or duration < 0:
            raise SimulationError("starvation window must have non-negative start/duration")
        self.starved_count = int(fraction * n)
        if n - self.starved_count < 2:
            raise SimulationError(
                f"starving {self.starved_count} of {n} agents leaves fewer than "
                f"2 active agents"
            )
        self.start = start
        self.duration = duration

    def _in_window(self, parallel_time: float) -> bool:
        return self.start <= parallel_time < self.start + self.duration

    def _next_pair(self) -> InteractionPair:
        if not self._in_window(self.parallel_time_elapsed):
            receiver, sender = self.rng.uniform_pair(self.n)
            return InteractionPair(receiver=receiver, sender=sender)
        active = self.n - self.starved_count
        receiver = self.starved_count + self.rng.randrange(active)
        sender = self.starved_count + self.rng.randrange(active - 1)
        if sender >= receiver:
            sender += 1
        return InteractionPair(receiver=receiver, sender=sender)


# ---------------------------------------------------------------------------
# Round schedulers (the vector engine's interface)
# ---------------------------------------------------------------------------


class RoundScheduler(ABC):
    """One batch of disjoint interaction pairs per synchronous round.

    The vector engine calls :meth:`draw_round` once per round with its numpy
    generator and the parallel time elapsed so far; the scheduler returns
    ``(receivers, senders)`` index arrays describing disjoint pairs.  A round
    may emit fewer than ``floor(n/2)`` pairs — e.g. under starvation — but
    still advances the engine's clock by the full nominal round tick, so
    idle agents cost parallel time.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise SimulationError(f"population must contain at least 2 agents, got {n}")
        self.n = n
        # Round-draw kernels, rebindable onto an array backend: the vector
        # engine calls :meth:`bind_backend` once at construction so the
        # matching and thinning draws run on the selected backend's
        # implementations.  The defaults are the reference numpy paths.
        self._draw_matching = draw_matching_arrays
        self._thin_members = _thin_members_reference

    def bind_backend(self, backend) -> None:
        """Route this scheduler's round draws through ``backend``'s kernels."""
        self._draw_matching = backend.draw_matching_arrays
        self._thin_members = backend.thin_members

    @abstractmethod
    def draw_round(
        self, rng: np.random.Generator, parallel_time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw the matched (receiver, sender) pairs of one round."""


def _thin_members_reference(
    rates: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Reference rate-thinning: agent ``i`` joins with probability ``rates[i]``."""
    return np.nonzero(rng.random(rates.size) < rates)[0]


class MatchingRoundScheduler(RoundScheduler):
    """Uniform random matching — the vector engine's default round."""

    def draw_round(
        self, rng: np.random.Generator, parallel_time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._draw_matching(self.n, rng)


class WeightedMatchingRoundScheduler(RoundScheduler):
    """Rate-thinned matching: each agent joins a round with its own rate.

    Every round, agent ``i`` is available independently with probability
    ``rate_i``; the available agents are matched uniformly.  The same lazy
    prefix convention as :class:`WeightedPairScheduler`: the first
    ``floor(lazy_fraction * n)`` agents have rate ``lazy_rate``, the rest
    rate 1 (and therefore join every round, exactly as under plain
    matching).
    """

    def __init__(
        self, n: int, lazy_fraction: float = 0.5, lazy_rate: float = 0.1
    ) -> None:
        super().__init__(n)
        if not 0.0 <= lazy_fraction <= 1.0:
            raise SimulationError(
                f"lazy_fraction must be in [0, 1], got {lazy_fraction}"
            )
        if not 0.0 < lazy_rate <= 1.0:
            raise SimulationError(f"lazy_rate must be in (0, 1], got {lazy_rate}")
        self.lazy_count = int(lazy_fraction * n)
        self.rates = np.ones(n)
        self.rates[: self.lazy_count] = lazy_rate

    def draw_round(
        self, rng: np.random.Generator, parallel_time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        available = self._thin_members(self.rates, rng)
        if available.size < 2:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._draw_matching(available, rng)


class TwoBlockRoundScheduler(RoundScheduler):
    """Community-structured rounds: intra-block or cross-block matchings.

    With probability ``intra`` a round matches each block internally; with
    probability ``1 - intra`` it matches agents of block A against agents of
    block B (``min(|A|, |B|)`` uniformly chosen cross pairs, uniformly
    oriented).  Blocks use the same deterministic split as
    :class:`TwoBlockPairScheduler`.
    """

    def __init__(self, n: int, intra: float = 0.9, split: float = 0.5) -> None:
        super().__init__(n)
        if not 0.0 <= intra <= 1.0:
            raise SimulationError(f"intra-block probability must be in [0, 1], got {intra}")
        if not 0.0 < split < 1.0:
            raise SimulationError(f"block split must be in (0, 1), got {split}")
        boundary = min(max(1, int(split * n)), n - 1)
        self.block_a = np.arange(0, boundary)
        self.block_b = np.arange(boundary, n)
        self.intra = intra

    def draw_round(
        self, rng: np.random.Generator, parallel_time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if rng.random() < self.intra:
            rec_a, sen_a = self._draw_matching(self.block_a, rng)
            rec_b, sen_b = self._draw_matching(self.block_b, rng)
            return np.concatenate([rec_a, rec_b]), np.concatenate([sen_a, sen_b])
        pairs = min(self.block_a.size, self.block_b.size)
        from_a = rng.permutation(self.block_a)[:pairs]
        from_b = rng.permutation(self.block_b)[:pairs]
        orient = rng.random(pairs) < 0.5
        receivers = np.where(orient, from_a, from_b)
        senders = np.where(orient, from_b, from_a)
        return receivers, senders


class QuiescingRoundScheduler(RoundScheduler):
    """Starvation-window rounds: frozen agents sit out whole matchings."""

    def __init__(
        self,
        n: int,
        fraction: float = 0.5,
        start: float = 0.0,
        duration: float = 16.0,
    ) -> None:
        super().__init__(n)
        if not 0.0 <= fraction < 1.0:
            raise SimulationError(f"starved fraction must be in [0, 1), got {fraction}")
        if start < 0 or duration < 0:
            raise SimulationError("starvation window must have non-negative start/duration")
        self.starved_count = int(fraction * n)
        if n - self.starved_count < 2:
            raise SimulationError(
                f"starving {self.starved_count} of {n} agents leaves fewer than "
                f"2 active agents"
            )
        self.active = np.arange(self.starved_count, n)
        self.start = start
        self.duration = duration

    def draw_round(
        self, rng: np.random.Generator, parallel_time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.start <= parallel_time < self.start + self.duration:
            return self._draw_matching(self.active, rng)
        return self._draw_matching(self.n, rng)


# ---------------------------------------------------------------------------
# Scheduler policies and the registry
# ---------------------------------------------------------------------------


class SchedulerPolicy(ABC):
    """A named, option-validated scheduling policy.

    A policy advertises which engine-facing interfaces it supports through
    ``capabilities`` (any of ``"pair"``, ``"counts"``, ``"rounds"``,
    ``"mean-field"``; see the module docstring) and builds the corresponding
    scheduler objects on demand.  Policies are registered by name;
    :class:`SchedulerSpec` is the serialisable handle used by the harness
    and the CLI.
    """

    #: Registry key (``--scheduler <name>``).
    name: ClassVar[str] = ""
    #: One line for ``repro engines`` / ``--help`` output.
    description: ClassVar[str] = ""
    #: Interfaces the policy supports: subset of
    #: {"pair", "counts", "rounds", "mean-field"}.
    capabilities: ClassVar[frozenset[str]] = frozenset()
    #: Time semantics note for the DESIGN.md taxonomy table.
    time_semantics: ClassVar[str] = ""
    #: Paper-fidelity note for the DESIGN.md taxonomy table.
    paper_fidelity: ClassVar[str] = ""
    #: Option names accepted by the constructor.
    option_names: ClassVar[tuple[str, ...]] = ()
    #: Option name -> coercion callable (e.g. ``float``).  Options absent
    #: from the mapping are passed through untouched (e.g. the structured
    #: ``rates`` of ``state-weighted``, which does its own parsing).
    #: :func:`coerce_policy_options` applies these — with a clear
    #: :class:`SimulationError` instead of a raw ``ValueError`` — before any
    #: option reaches a constructor, so CLI strings like
    #: ``--scheduler-opt lazy_rate=abc`` fail at spec-resolution time.
    option_types: ClassVar[Mapping[str, Callable[[object], object]]] = {}

    def __init__(self, **options) -> None:
        unknown = set(options) - set(self.option_names)
        if unknown:
            raise SimulationError(
                f"scheduler {self.name!r} does not accept options "
                f"{sorted(unknown)}; allowed: {sorted(self.option_names)}"
            )
        self.options = dict(options)

    # -- capability constructors (override the supported ones) ---------------

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        """Build the per-pair stream for the agent engine."""
        raise SimulationError(
            f"scheduler {self.name!r} has no per-pair form (agent engine); "
            f"capabilities: {sorted(self.capabilities)}"
        )

    def make_round_scheduler(self, n: int) -> RoundScheduler:
        """Build the round scheduler for the vector engine."""
        raise SimulationError(
            f"scheduler {self.name!r} has no round form (vector engine); "
            f"capabilities: {sorted(self.capabilities)}"
        )

    def state_rate_function(self) -> Callable[[Hashable], float] | None:
        """Per-state activity rate for the count-level engines.

        Returns ``None`` for the uniform policy (engines keep their exact
        integer-arithmetic fast path) or a callable ``state -> rate``.
        """
        raise SimulationError(
            f"scheduler {self.name!r} cannot be count-compressed (count/batched "
            f"engines); capabilities: {sorted(self.capabilities)}"
        )

    def state_rates(self, states: Sequence[Hashable]) -> np.ndarray | None:
        """Vectorised view of :meth:`state_rate_function` over a state list."""
        rate_of = self.state_rate_function()
        if rate_of is None:
            return None
        return np.array([rate_of(state) for state in states], dtype=np.float64)


def coerce_policy_options(
    policy_cls: type["SchedulerPolicy"], options: Mapping[str, object]
) -> dict[str, object]:
    """Validate option names and coerce option values for one policy class.

    Unknown keys and values the declared coercer rejects raise a
    :class:`SimulationError` naming the scheduler, the option and the
    expected type — rather than reaching the policy constructor as raw
    strings and surfacing as a bare ``ValueError`` (or, worse, being
    accepted).  Values already of the right type pass through unchanged.
    """
    coerced: dict[str, object] = {}
    for key, value in options.items():
        if key not in policy_cls.option_names:
            raise SimulationError(
                f"scheduler {policy_cls.name!r} does not accept option {key!r}; "
                f"allowed: {sorted(policy_cls.option_names) or 'none'}"
            )
        converter = policy_cls.option_types.get(key)
        if converter is not None:
            try:
                value = converter(value)
            except (TypeError, ValueError):
                expected = getattr(converter, "__name__", str(converter))
                raise SimulationError(
                    f"option {key!r} of scheduler {policy_cls.name!r} must be "
                    f"a {expected}, got {value!r}"
                ) from None
        coerced[key] = value
    return coerced


SCHEDULER_REGISTRY: dict[str, type[SchedulerPolicy]] = {}


def register_scheduler_policy(cls: type[SchedulerPolicy]) -> type[SchedulerPolicy]:
    """Register a policy class under its ``name`` (usable as a decorator)."""
    if not cls.name:
        raise SimulationError("scheduler policies must declare a non-empty name")
    SCHEDULER_REGISTRY[cls.name] = cls
    return cls


def scheduler_names() -> tuple[str, ...]:
    """Registered scheduler names, in registration order."""
    return tuple(SCHEDULER_REGISTRY)


def get_scheduler_policy(name: str) -> type[SchedulerPolicy]:
    """Look up a registered policy class, raising :class:`SimulationError`."""
    try:
        return SCHEDULER_REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; registered: "
            f"{', '.join(scheduler_names())}"
        ) from None


@register_scheduler_policy
class SequentialPolicy(SchedulerPolicy):
    """The paper's model: one uniform ordered pair per interaction."""

    name = "sequential"
    description = "uniform random ordered pair per interaction (the paper's model)"
    # "mean-field" marks that this policy's pair distribution is the uniform
    # well-mixed one the multiscale engine's propensity model presupposes;
    # it is deliberately the only policy carrying that capability.
    capabilities = frozenset({"pair", "counts", "mean-field"})
    time_semantics = "1 interaction per step; Poisson(2t) interactions per agent"
    paper_fidelity = "exact"

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        return SequentialScheduler(n, rng)

    def state_rate_function(self) -> Callable[[Hashable], float] | None:
        return None


@register_scheduler_policy
class MatchingPolicy(SchedulerPolicy):
    """Synchronous uniform random matching rounds."""

    name = "matching"
    description = "synchronous uniform random matching (one interaction per agent per round)"
    capabilities = frozenset({"pair", "rounds"})
    time_semantics = "floor(n/2) interactions per round (~1/2 time unit)"
    paper_fidelity = "constant-factor time agreement; correctness preserved"

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        return RandomMatchingScheduler(n, rng)

    def make_round_scheduler(self, n: int) -> RoundScheduler:
        return MatchingRoundScheduler(n)


@register_scheduler_policy
class WeightedPolicy(SchedulerPolicy):
    """Per-agent contact rates (a lazy subpopulation)."""

    name = "weighted"
    description = (
        "per-agent contact rates: floor(lazy_fraction*n) agents interact at "
        "rate lazy_rate"
    )
    capabilities = frozenset({"pair", "rounds"})
    time_semantics = "per-pair: 1 interaction per step; rounds: rate-thinned matchings"
    paper_fidelity = "non-uniform scenario (outside the paper's model)"
    option_names = ("lazy_fraction", "lazy_rate")
    option_types = {"lazy_fraction": float, "lazy_rate": float}

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self.lazy_fraction = float(self.options.get("lazy_fraction", 0.5))
        self.lazy_rate = float(self.options.get("lazy_rate", 0.1))
        if not 0.0 <= self.lazy_fraction <= 1.0:
            raise SimulationError(
                f"lazy_fraction must be in [0, 1], got {self.lazy_fraction}"
            )
        if not 0.0 < self.lazy_rate <= 1.0:
            raise SimulationError(f"lazy_rate must be in (0, 1], got {self.lazy_rate}")

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        return WeightedPairScheduler(
            n, rng, lazy_fraction=self.lazy_fraction, lazy_rate=self.lazy_rate
        )

    def make_round_scheduler(self, n: int) -> RoundScheduler:
        return WeightedMatchingRoundScheduler(
            n, lazy_fraction=self.lazy_fraction, lazy_rate=self.lazy_rate
        )


@register_scheduler_policy
class TwoBlockPolicy(SchedulerPolicy):
    """Two-community structure with tunable intra-block preference."""

    name = "two-block"
    description = (
        "two communities: interactions stay intra-block with probability "
        "intra (1 - intra crosses)"
    )
    capabilities = frozenset({"pair", "rounds"})
    time_semantics = "per-pair: 1 interaction per step; rounds: block-wise matchings"
    paper_fidelity = "non-uniform scenario; intra -> 1 approaches a partitioned population"
    option_names = ("intra", "split")
    option_types = {"intra": float, "split": float}

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self.intra = float(self.options.get("intra", 0.9))
        self.split = float(self.options.get("split", 0.5))
        if not 0.0 <= self.intra <= 1.0:
            raise SimulationError(f"intra must be in [0, 1], got {self.intra}")
        if not 0.0 < self.split < 1.0:
            raise SimulationError(f"split must be in (0, 1), got {self.split}")

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        return TwoBlockPairScheduler(n, rng, intra=self.intra, split=self.split)

    def make_round_scheduler(self, n: int) -> RoundScheduler:
        return TwoBlockRoundScheduler(n, intra=self.intra, split=self.split)


@register_scheduler_policy
class QuiescingPolicy(SchedulerPolicy):
    """Adversarial starvation of an agent subset for a time window."""

    name = "quiescing"
    description = (
        "starves floor(fraction*n) agents during [start, start+duration) "
        "units of parallel time"
    )
    capabilities = frozenset({"pair", "rounds"})
    time_semantics = "uniform outside the window; starved agents frozen inside it"
    paper_fidelity = "adversarial scenario (stresses phase clocks / termination)"
    option_names = ("fraction", "start", "duration")
    option_types = {"fraction": float, "start": float, "duration": float}

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self.fraction = float(self.options.get("fraction", 0.5))
        self.start = float(self.options.get("start", 0.0))
        self.duration = float(self.options.get("duration", 16.0))
        if not 0.0 <= self.fraction < 1.0:
            raise SimulationError(f"fraction must be in [0, 1), got {self.fraction}")
        if self.start < 0 or self.duration < 0:
            raise SimulationError(
                "starvation window must have non-negative start/duration"
            )

    def make_pair_scheduler(self, n: int, rng: RandomSource) -> InteractionScheduler:
        return QuiescingPairScheduler(
            n, rng, fraction=self.fraction, start=self.start, duration=self.duration
        )

    def make_round_scheduler(self, n: int) -> RoundScheduler:
        return QuiescingRoundScheduler(
            n, fraction=self.fraction, start=self.start, duration=self.duration
        )


@register_scheduler_policy
class StateWeightedPolicy(SchedulerPolicy):
    """Per-state activity rates — the count-compressible non-uniform policy.

    Pair probabilities are proportional to ``(r_i c_i)(r_j c_j)`` where
    ``r_s`` is the rate of state ``s`` (states absent from ``rates`` use
    ``default_rate``).  Because the rate depends only on the state, the
    policy is agent-anonymous and runs *exactly* on the count and batched
    engines — the chemical-reaction-network style of non-uniformity.

    ``rates`` maps state signature to rate: a mapping, a tuple of pairs
    (the frozen :class:`SchedulerSpec` form), or the CLI string form
    ``"STATE:RATE,STATE:RATE"`` (string-labelled states only), e.g.
    ``--scheduler state-weighted --scheduler-opt rates=I:0.3``.
    """

    name = "state-weighted"
    description = (
        "per-state activity rates (agent-anonymous; count/batched engines; "
        "rates=STATE:RATE,... from the CLI)"
    )
    capabilities = frozenset({"counts"})
    time_semantics = "1 interaction per step; pair probability ~ (r_i c_i)(r_j c_j)"
    paper_fidelity = "non-uniform scenario (CRN-style rate constants)"
    option_names = ("rates", "default_rate")
    # ``rates`` is structured (mapping / pair tuple / "STATE:RATE,..."
    # string) and parsed by the constructor itself, so it has no coercer.
    option_types = {"default_rate": float}

    def __init__(self, **options) -> None:
        super().__init__(**options)
        self.rates: dict[Hashable, float] = {}
        for state, rate in self._rate_items(self.options.get("rates", ())):
            try:
                rate = float(rate)
            except (TypeError, ValueError):
                raise SimulationError(
                    f"state rate for {state!r} must be a number, got {rate!r}"
                ) from None
            if rate < 0:
                raise SimulationError(f"state rate must be non-negative, got {rate}")
            self.rates[state] = rate
        try:
            self.default_rate = float(self.options.get("default_rate", 1.0))
        except (TypeError, ValueError):
            raise SimulationError(
                f"default_rate must be a number, got "
                f"{self.options.get('default_rate')!r}"
            ) from None
        if self.default_rate < 0:
            raise SimulationError(
                f"default_rate must be non-negative, got {self.default_rate}"
            )

    @staticmethod
    def _rate_items(raw) -> list[tuple[Hashable, object]]:
        if isinstance(raw, Mapping):
            return list(raw.items())
        if isinstance(raw, str):
            items: list[tuple[Hashable, object]] = []
            for entry in raw.split(","):
                state, separator, rate = entry.partition(":")
                if not separator or not state:
                    raise SimulationError(
                        f"malformed rates entry {entry!r}; expected STATE:RATE"
                    )
                items.append((state, rate))
            return items
        try:
            pairs = list(raw)
            return [(state, rate) for state, rate in pairs]
        except (TypeError, ValueError):
            raise SimulationError(
                f"rates must be a mapping, a sequence of (state, rate) pairs or "
                f"a 'STATE:RATE,...' string, got {raw!r}"
            ) from None

    def state_rate_function(self) -> Callable[[Hashable], float] | None:
        rates, default = self.rates, self.default_rate
        return lambda state: rates.get(state, default)

    def state_rates(self, states: Sequence[Hashable]) -> np.ndarray | None:
        """Vectorised rates over the protocol's state list.

        Rejects rate keys that name no protocol state — a typo (or a state
        signature the CLI string form cannot express) would otherwise fall
        back to ``default_rate`` for every state and silently run the
        uniform scheduler under a non-uniform cache key.
        """
        known = set(states)
        unknown = [state for state in self.rates if state not in known]
        if unknown:
            raise SimulationError(
                f"rates name states outside the protocol's state set: "
                f"{sorted(map(repr, unknown))}; protocol states: "
                f"{sorted(map(repr, known))}"
            )
        return super().state_rates(states)


# ---------------------------------------------------------------------------
# SchedulerSpec — the picklable, cache-keyable handle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulerSpec:
    """Frozen description of a scheduler choice: name plus options.

    This is the form threaded through :class:`~repro.harness.parallel.TrialSpec`
    (it participates in the sweep cache key), the CLI and
    :func:`repro.engine.selection.build_engine`.  ``options`` is a tuple of
    ``(key, value)`` pairs so the spec stays hashable and picklable.
    """

    name: str = "sequential"
    options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        get_scheduler_policy(self.name)  # fail fast on unknown names

    @classmethod
    def coerce(
        cls,
        value: "SchedulerSpec | str | None",
        default: str = "sequential",
        options: Mapping[str, object] | None = None,
    ) -> "SchedulerSpec":
        """Normalise ``None`` / a name / a spec into a :class:`SchedulerSpec`.

        ``options`` (if given) applies to the name/default forms; passing
        options alongside an already-built spec is an error.
        """
        if isinstance(value, SchedulerSpec):
            if options:
                raise SimulationError(
                    "scheduler options cannot be combined with an explicit "
                    "SchedulerSpec; set them on the spec itself"
                )
            return value
        name = value if value is not None else default
        if not isinstance(name, str):
            raise SimulationError(
                f"scheduler must be a name or SchedulerSpec, got {type(value).__name__}"
            )
        pairs = tuple(sorted((options or {}).items()))
        return cls(name=name, options=pairs)

    def options_dict(self) -> dict[str, object]:
        """The options as a plain dictionary."""
        return dict(self.options)

    def coerced(self) -> "SchedulerSpec":
        """This spec with option names validated and values type-coerced.

        Raises a clear :class:`SimulationError` for unknown options or
        values the policy's declared :attr:`SchedulerPolicy.option_types`
        cannot convert (``"abc"`` for a float option).  The result is the
        canonical spec the engines — and the sweep cache keys — should see,
        so ``intra="0.95"`` and ``intra=0.95`` name the same trial.
        """
        policy_cls = get_scheduler_policy(self.name)
        original = self.options_dict()
        coerced = coerce_policy_options(policy_cls, original)
        # Type-sensitive comparison: 1 == 1.0 but repr-based cache payloads
        # distinguish them, so an int coerced to float must rebuild the spec.
        if all(
            type(coerced[key]) is type(value) and coerced[key] == value
            for key, value in original.items()
        ):
            return self
        return SchedulerSpec(name=self.name, options=tuple(sorted(coerced.items())))

    def build_policy(self) -> SchedulerPolicy:
        """Instantiate the named policy with this spec's (coerced) options."""
        policy_cls = get_scheduler_policy(self.name)
        return policy_cls(**coerce_policy_options(policy_cls, self.options_dict()))

    def cache_payload(self) -> dict:
        """JSON-friendly canonical form for sweep cache keys."""
        return {
            "name": self.name,
            "options": sorted((str(key), repr(value)) for key, value in self.options),
        }

    def label(self) -> str:
        """Human-readable label, e.g. ``two-block(intra=0.95)``."""
        if not self.options:
            return self.name
        rendered = ", ".join(f"{key}={value}" for key, value in self.options)
        return f"{self.name}({rendered})"


#: Registered scheduler names (import-time snapshot for CLI choices).
SCHEDULER_NAMES = scheduler_names()
