"""Interaction schedulers.

The population-protocol model repeatedly selects an ordered pair of distinct
agents uniformly at random.  :class:`SequentialScheduler` implements exactly
that.  :class:`RandomMatchingScheduler` implements the standard synchronous
approximation in which each "round" is a uniformly random perfect matching of
the population, giving every agent exactly one interaction per round; it is
the scheduling model used by the vectorised large-``n`` simulator
(:mod:`repro.core.array_simulator`) and is documented as a substitution in
``DESIGN.md``.

Both schedulers are iterators over :class:`repro.types.InteractionPair` and
expose the number of interactions they have emitted, so callers can convert
to parallel time uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.exceptions import SimulationError
from repro.rng import RandomSource
from repro.types import InteractionPair


class InteractionScheduler(ABC):
    """Base class for interaction schedulers.

    A scheduler is bound to a population size ``n`` and a random source, and
    yields an unbounded stream of ordered interaction pairs.
    """

    def __init__(self, n: int, rng: RandomSource) -> None:
        if n < 2:
            raise SimulationError(f"population must contain at least 2 agents, got {n}")
        self.n = n
        self.rng = rng
        self._emitted = 0

    @property
    def interactions_emitted(self) -> int:
        """Number of interaction pairs produced so far."""
        return self._emitted

    @property
    def parallel_time_elapsed(self) -> float:
        """Parallel time corresponding to the interactions emitted so far."""
        return self._emitted / self.n

    @abstractmethod
    def _next_pair(self) -> InteractionPair:
        """Produce the next interaction pair (implemented by subclasses)."""

    def next_pair(self) -> InteractionPair:
        """Return the next scheduled interaction pair."""
        pair = self._next_pair()
        self._emitted += 1
        return pair

    def pairs(self) -> Iterator[InteractionPair]:
        """Iterate over scheduled pairs forever."""
        while True:
            yield self.next_pair()


class SequentialScheduler(InteractionScheduler):
    """The paper's scheduler: each interaction picks a uniform ordered pair.

    The receiver and the sender are distinct agents chosen uniformly at random
    among all ``n * (n - 1)`` ordered pairs, independently for every
    interaction.
    """

    def _next_pair(self) -> InteractionPair:
        receiver, sender = self.rng.uniform_pair(self.n)
        return InteractionPair(receiver=receiver, sender=sender)


class RandomMatchingScheduler(InteractionScheduler):
    """Synchronous random-matching scheduler.

    Each round draws a uniformly random permutation of the agents, pairs
    consecutive entries, and assigns sender/receiver roles uniformly within
    each pair.  Pairs are then emitted one at a time so the interface matches
    the sequential scheduler.  When ``n`` is odd the last agent of the
    permutation idles for that round.

    Every agent participates in exactly one interaction per round (rather than
    a Poisson-distributed number under the sequential scheduler), so one round
    corresponds to ``floor(n / 2) / n ~ 1/2`` units of parallel time.  The
    approximation preserves epidemic completion times and phase-clock
    behaviour up to constant factors; see ``DESIGN.md`` (Substitutions).
    """

    def __init__(self, n: int, rng: RandomSource) -> None:
        super().__init__(n, rng)
        self._queue: list[InteractionPair] = []
        self._rounds = 0

    @property
    def rounds_completed(self) -> int:
        """Number of full matching rounds drawn so far."""
        return self._rounds

    def _refill(self) -> None:
        order = list(range(self.n))
        self.rng.shuffle(order)
        batch: list[InteractionPair] = []
        for index in range(0, self.n - 1, 2):
            first, second = order[index], order[index + 1]
            if self.rng.fair_coin():
                first, second = second, first
            batch.append(InteractionPair(receiver=first, sender=second))
        # Reverse so .pop() emits pairs in matching order.
        self._queue = list(reversed(batch))
        self._rounds += 1

    def _next_pair(self) -> InteractionPair:
        if not self._queue:
            self._refill()
        return self._queue.pop()
