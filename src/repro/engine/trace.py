"""Execution traces.

An *execution* in the paper is a sequence of configurations.  The
:class:`TraceRecorder` probe snapshots the population configuration on a fixed
parallel-time cadence, producing an :class:`ExecutionTrace`: the time series
of state counts that the density experiments (Lemma 4.2 / Theorem 4.1) and
several benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from repro.engine.configuration import Configuration


@dataclass(frozen=True)
class TracePoint:
    """One sampled point of an execution trace."""

    interaction: int
    parallel_time: float
    configuration: Configuration


@dataclass
class ExecutionTrace:
    """A sampled execution: configurations indexed by parallel time."""

    population_size: int
    points: list[TracePoint] = field(default_factory=list)

    def append(self, interaction: int, configuration: Configuration) -> None:
        """Add a sample taken at the given interaction count."""
        self.points.append(
            TracePoint(
                interaction=interaction,
                parallel_time=interaction / self.population_size,
                configuration=configuration,
            )
        )

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def times(self) -> list[float]:
        """Parallel times of the samples."""
        return [point.parallel_time for point in self.points]

    def counts_of(self, state: Hashable) -> list[int]:
        """Time series of the count of ``state``."""
        return [point.configuration.count(state) for point in self.points]

    def states_seen(self) -> frozenset[Hashable]:
        """All states appearing anywhere in the trace."""
        seen: set[Hashable] = set()
        for point in self.points:
            seen.update(point.configuration.states_present())
        return frozenset(seen)

    def first_time_reaching(self, state: Hashable, threshold: int) -> float | None:
        """Earliest sampled parallel time at which ``count(state) >= threshold``.

        Returns ``None`` if the threshold is never reached in the trace.  Used
        by the empirical check of the timer/density lemma: from a dense
        configuration every producible state should reach count ``delta * n``
        within O(1) time.
        """
        for point in self.points:
            if point.configuration.count(state) >= threshold:
                return point.parallel_time
        return None

    def final_configuration(self) -> Configuration:
        """The last sampled configuration."""
        if not self.points:
            raise ValueError("trace is empty")
        return self.points[-1].configuration


@dataclass
class TraceRecorder:
    """Simulation probe that builds an :class:`ExecutionTrace`.

    Register it with ``simulation.add_probe(recorder, interval=...)``; it
    snapshots the configuration each time it fires.  A starting snapshot can
    be taken explicitly with :meth:`record_initial`.
    """

    trace: ExecutionTrace

    @classmethod
    def for_simulation(cls, simulation: Any) -> "TraceRecorder":
        """Create a recorder bound to ``simulation`` and record the initial point."""
        recorder = cls(trace=ExecutionTrace(population_size=simulation.population_size))
        recorder.record_initial(simulation)
        return recorder

    def record_initial(self, simulation: Any) -> None:
        """Record the configuration before any interaction has happened."""
        self.trace.append(0, simulation.configuration())

    def __call__(self, simulation: Any) -> None:
        """Probe entry point."""
        self.trace.append(simulation.metrics.interactions, simulation.configuration())
