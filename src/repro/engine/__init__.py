"""Simulation engines for population protocols.

Two engines are provided:

* :class:`repro.engine.simulator.Simulation` — the *agent-level* engine.  It
  stores one state object per agent and applies the protocol's transition to
  uniformly random ordered pairs, exactly as in the paper's model.  This is
  the reference engine: every protocol in the library runs on it and all
  correctness tests use it.

* :class:`repro.engine.count_simulator.CountSimulator` — the
  *configuration-level* engine for finite-state protocols.  It stores only
  the count of each state, which makes classic constant-state protocols
  (epidemics, majority, leader election) fast even for very large
  populations, and it is the representation the termination analysis
  operates on.

* :class:`repro.engine.batched_simulator.BatchedCountSimulator` — the
  *batched* configuration-level engine.  It compiles the protocol into dense
  transition tables and advances ``~sqrt(n)`` interactions per numpy
  multinomial draw (with an exact sequential fallback at small counts),
  which is the fastest option for finite-state protocols at ``n >= 10^5``.

* :mod:`repro.engine.vector` — the *vector* engine: per-agent state held in
  numpy struct-of-arrays, advanced one synchronous random-matching round at
  a time with exact per-round convergence measurement.  It runs bespoke
  :class:`~repro.engine.vector.VectorProtocol` kernels (the
  ``Log-Size-Estimation`` and leader-terminating paper protocols, whose
  unbounded per-agent fields rule out count compression) and, through
  :class:`~repro.engine.vector.VectorFiniteStateSimulator`, any finite-state
  protocol behind the count-level interface.

:func:`repro.engine.selection.build_engine` constructs any of the four
behind a shared count-level interface; see ``DESIGN.md`` (Engine selection).

Supporting pieces: the interaction schedulers
(:mod:`repro.engine.scheduler`), configuration multisets
(:mod:`repro.engine.configuration`), convergence detectors
(:mod:`repro.engine.convergence`), metric collection
(:mod:`repro.engine.metrics`), event hooks (:mod:`repro.engine.events`) and
execution traces (:mod:`repro.engine.trace`).
"""

from repro.engine.batched_simulator import BatchedCountSimulator
from repro.engine.configuration import Configuration
from repro.engine.convergence import (
    ConvergenceDetector,
    all_agents_satisfy,
    output_within_tolerance,
    stable_for,
)
from repro.engine.count_simulator import CountSimulator
from repro.engine.events import EventLog, InteractionEvent, PeriodicProbe
from repro.engine.running import CountTracePoint
from repro.engine.selection import (
    ENGINE_NAMES,
    CountingSimulationAdapter,
    build_engine,
    engine_scheduler_matrix,
    schedulers_for_engine,
)
from repro.engine.metrics import SimulationMetrics, StateUsageTracker
from repro.engine.scheduler import (
    InteractionScheduler,
    MatchingRoundScheduler,
    RandomMatchingScheduler,
    RoundScheduler,
    SchedulerPolicy,
    SchedulerSpec,
    SequentialScheduler,
    draw_matching_arrays,
    scheduler_names,
)
from repro.engine.simulator import Simulation, SimulationReport
from repro.engine.trace import ExecutionTrace, TraceRecorder
from repro.engine.vector import (
    FiniteStateVectorProtocol,
    VectorFields,
    VectorFiniteStateSimulator,
    VectorProtocol,
    VectorRunResult,
    VectorSimulator,
)

__all__ = [
    "BatchedCountSimulator",
    "Configuration",
    "CountTracePoint",
    "CountingSimulationAdapter",
    "ENGINE_NAMES",
    "build_engine",
    "ConvergenceDetector",
    "all_agents_satisfy",
    "output_within_tolerance",
    "stable_for",
    "CountSimulator",
    "EventLog",
    "InteractionEvent",
    "PeriodicProbe",
    "SimulationMetrics",
    "StateUsageTracker",
    "InteractionScheduler",
    "MatchingRoundScheduler",
    "RandomMatchingScheduler",
    "RoundScheduler",
    "SchedulerPolicy",
    "SchedulerSpec",
    "SequentialScheduler",
    "draw_matching_arrays",
    "engine_scheduler_matrix",
    "scheduler_names",
    "schedulers_for_engine",
    "Simulation",
    "SimulationReport",
    "ExecutionTrace",
    "TraceRecorder",
    "FiniteStateVectorProtocol",
    "VectorFields",
    "VectorFiniteStateSimulator",
    "VectorProtocol",
    "VectorRunResult",
    "VectorSimulator",
]
