"""Shared run-loop helpers for the count-level engines.

The three engines behind :func:`repro.engine.selection.build_engine` share a
count-level interface (``population_size``, ``parallel_time``,
``run_interactions``, ``configuration``).  The predicate loop of
``run_until`` and the snapshot loop of ``run_with_trace`` are pure functions
of that interface, so they live here once instead of being copied into every
engine — a fix to the budget accounting or the snapshot boundaries applies
to all engines at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.configuration import Configuration
from repro.exceptions import ConvergenceError, SimulationError
from repro.obs.recorder import RECORDER as _REC
from repro.types import interactions_for_time, snapshot_boundaries

__all__ = ["CountTracePoint", "run_until_predicate", "run_with_trace"]


@dataclass
class CountTracePoint:
    """One sampled configuration of a count-level run."""

    interaction: int
    parallel_time: float
    configuration: Configuration


def _trace_point(simulator) -> CountTracePoint:
    return CountTracePoint(
        interaction=simulator.interactions,
        parallel_time=simulator.parallel_time,
        configuration=simulator.configuration(),
    )


def run_until_predicate(
    simulator,
    predicate: Callable,
    max_parallel_time: float,
    check_interval: int | None = None,
) -> float:
    """Run ``simulator`` until ``predicate(simulator)`` holds.

    The predicate is evaluated every ``check_interval`` interactions
    (default: every ``n`` interactions, i.e. once per unit of parallel time).
    Returns the parallel time reached.

    Raises
    ------
    ConvergenceError
        If the predicate does not hold within ``max_parallel_time``.
    """
    interval = (
        check_interval if check_interval is not None else simulator.population_size
    )
    if interval <= 0:
        raise SimulationError("check_interval must be positive")
    budget = interactions_for_time(max_parallel_time, simulator.population_size)
    executed = 0
    if predicate(simulator):
        return simulator.parallel_time
    if _REC.enabled:
        # Instrumented twin of the loop below: the telemetry split (step
        # time vs convergence-check time) costs three monotonic reads per
        # check_interval chunk, never per interaction.  The disabled branch
        # is byte-for-byte the historical loop.
        while executed < budget:
            chunk = min(interval, budget - executed)
            t0 = _REC.now_ns()
            simulator.run_interactions(chunk)
            t1 = _REC.now_ns()
            executed += chunk
            hit = predicate(simulator)
            _REC.add_time("engine.step", t1 - t0)
            _REC.add_time("engine.convergence_check", _REC.now_ns() - t1)
            _REC.count("engine.convergence_checks")
            if hit:
                return simulator.parallel_time
    else:
        while executed < budget:
            chunk = min(interval, budget - executed)
            simulator.run_interactions(chunk)
            executed += chunk
            if predicate(simulator):
                return simulator.parallel_time
    raise ConvergenceError(
        f"predicate did not hold within {max_parallel_time} units of parallel time "
        f"(n={simulator.population_size})"
    )


def run_with_trace(
    simulator, total_parallel_time: float, samples: int
) -> list[CountTracePoint]:
    """Run for ``total_parallel_time``; return evenly spaced snapshots.

    The initial configuration is always the first point; the remaining
    checkpoints are the exact boundaries of
    :func:`repro.types.snapshot_boundaries` — precisely ``samples`` further
    points whenever the run is at least ``samples`` interactions long.
    """
    if samples < 1:
        raise SimulationError("samples must be at least 1")
    total_interactions = interactions_for_time(
        total_parallel_time, simulator.population_size
    )
    trace = [_trace_point(simulator)]
    executed = 0
    for boundary in snapshot_boundaries(total_interactions, samples):
        simulator.run_interactions(boundary - executed)
        executed = boundary
        trace.append(_trace_point(simulator))
    return trace
