"""Event hooks and probes for the agent-level simulation engine.

A simulation accepts *probes*: callables invoked on a fixed cadence (every
``interval`` interactions) with the live :class:`~repro.engine.simulator.Simulation`
object.  Probes implement convergence detection, trajectory recording for the
density experiments, and progress logging, without the engine having to know
about any of them.

:class:`EventLog` is a lightweight recorder of individual interactions used by
small-scale debugging tests and by the execution traces of
:mod:`repro.engine.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class InteractionEvent:
    """Record of a single executed interaction."""

    index: int
    receiver: int
    sender: int
    receiver_before: Hashable
    sender_before: Hashable
    receiver_after: Hashable
    sender_after: Hashable

    @property
    def changed(self) -> bool:
        """Whether either participant changed state."""
        return (
            self.receiver_before != self.receiver_after
            or self.sender_before != self.sender_after
        )


@dataclass
class EventLog:
    """In-memory log of interaction events (for small populations/tests)."""

    events: list[InteractionEvent] = field(default_factory=list)
    capacity: int | None = None

    def append(self, event: InteractionEvent) -> None:
        """Append an event, dropping the oldest when over capacity."""
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[0]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def changed_events(self) -> list[InteractionEvent]:
        """Return only the events in which some agent changed state."""
        return [event for event in self.events if event.changed]


@dataclass
class PeriodicProbe:
    """A callback invoked every ``interval`` interactions.

    Parameters
    ----------
    interval:
        Number of interactions between invocations.  The default of ``None``
        means "once per ``n`` interactions" and is resolved by the simulation
        when the probe is registered.
    callback:
        Callable receiving the simulation object.  Its return value is
        ignored.
    name:
        Optional identifier (handy when inspecting probe lists in tests).
    """

    callback: Callable[[Any], None]
    interval: int | None = None
    name: str = ""

    def resolve_interval(self, population_size: int) -> int:
        """Return the concrete interval for a given population size."""
        if self.interval is not None:
            if self.interval <= 0:
                raise ValueError(f"probe interval must be positive, got {self.interval}")
            return self.interval
        return max(1, population_size)
