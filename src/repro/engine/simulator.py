"""Agent-level simulation engine.

:class:`Simulation` is the reference implementation of the paper's execution
model: a population of ``n`` agents, each holding a protocol-defined state
object, interacting in uniformly random ordered pairs.  It supports

* running for a fixed number of interactions or amount of parallel time,
* running until a predicate holds (with an interaction budget),
* periodic probes (convergence detectors, trajectory recorders),
* optional tracking of the distinct states used (space complexity), and
* snapshots of the population as :class:`~repro.engine.configuration.Configuration`
  multisets.

The engine never mutates state objects in place; protocols return fresh state
values from their transition, which keeps snapshots and traces meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.engine.configuration import Configuration
from repro.engine.convergence import ConvergenceDetector
from repro.engine.events import EventLog, InteractionEvent, PeriodicProbe
from repro.engine.metrics import SimulationMetrics, StateUsageTracker
from repro.engine.scheduler import (
    InteractionScheduler,
    SchedulerSpec,
    SequentialScheduler,
)
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource
from repro.types import interactions_for_time


@dataclass
class SimulationReport:
    """Summary of a completed (or stopped) simulation run."""

    population_size: int
    interactions: int
    parallel_time: float
    converged: bool
    convergence_interaction: int | None
    convergence_time: float | None
    distinct_states: int | None
    outputs: list[Any]

    def as_dict(self) -> dict:
        """Return a JSON-friendly dictionary view of the report."""
        return {
            "population_size": self.population_size,
            "interactions": self.interactions,
            "parallel_time": self.parallel_time,
            "converged": self.converged,
            "convergence_interaction": self.convergence_interaction,
            "convergence_time": self.convergence_time,
            "distinct_states": self.distinct_states,
        }


class Simulation:
    """Drive an :class:`~repro.protocols.base.AgentProtocol` on ``n`` agents.

    Parameters
    ----------
    protocol:
        The protocol to run.
    population_size:
        Number of agents ``n`` (at least 2).
    seed:
        Seed for the shared random source (scheduler choices and agent coin
        flips).  Identical seeds reproduce identical executions.
    scheduler:
        Scheduling policy: a registered scheduler name (``"sequential"``,
        ``"matching"``, ``"weighted"``, ...), a
        :class:`~repro.engine.scheduler.SchedulerSpec` carrying options, or
        a pre-built :class:`~repro.engine.scheduler.InteractionScheduler`
        instance.  Defaults to the paper's
        :class:`~repro.engine.scheduler.SequentialScheduler`.
    track_states:
        When ``True``, the distinct state signatures visited by any agent are
        recorded (used for the space-complexity experiments).  Adds overhead
        proportional to the number of interactions.
    initial_states:
        Optional explicit list of initial states, overriding
        ``protocol.initial_state``.  Must have length ``population_size``.
    event_log_capacity:
        When not ``None``, keep an :class:`~repro.engine.events.EventLog` of
        the most recent interactions (for debugging / trace tests).
    """

    def __init__(
        self,
        protocol: AgentProtocol,
        population_size: int,
        seed: int | None = None,
        scheduler: InteractionScheduler | SchedulerSpec | str | None = None,
        track_states: bool = False,
        initial_states: Sequence[Any] | None = None,
        event_log_capacity: int | None = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.protocol = protocol
        self.population_size = population_size
        self.rng = RandomSource(seed=seed)
        if isinstance(scheduler, InteractionScheduler):
            self.scheduler = scheduler
        elif scheduler is None:
            self.scheduler = SequentialScheduler(population_size, self.rng)
        else:
            spec = SchedulerSpec.coerce(scheduler)
            self.scheduler = spec.build_policy().make_pair_scheduler(
                population_size, self.rng
            )
        if self.scheduler.n != population_size:
            raise SimulationError(
                "scheduler population size does not match the simulation population size"
            )
        if initial_states is not None:
            if len(initial_states) != population_size:
                raise SimulationError(
                    f"initial_states has length {len(initial_states)}, "
                    f"expected {population_size}"
                )
            self.states: list[Any] = list(initial_states)
        else:
            self.states = [
                protocol.initial_state(agent_id) for agent_id in range(population_size)
            ]
        tracker = StateUsageTracker() if track_states else None
        if tracker is not None:
            tracker.observe_many(
                protocol.state_signature(state) for state in self.states
            )
        self.metrics = SimulationMetrics(
            population_size=population_size, state_usage=tracker
        )
        self.event_log = (
            EventLog(capacity=event_log_capacity) if event_log_capacity is not None else None
        )
        self._probes: list[tuple[PeriodicProbe, int]] = []

    # -- probes ----------------------------------------------------------------

    def add_probe(
        self,
        callback: Callable[["Simulation"], None],
        interval: int | None = None,
        name: str = "",
    ) -> PeriodicProbe:
        """Register a callback invoked every ``interval`` interactions.

        The default interval is once per ``n`` interactions (once per unit of
        parallel time).  Returns the :class:`PeriodicProbe` so callers can
        keep a handle on stateful probes such as convergence detectors.
        """
        probe = PeriodicProbe(callback=callback, interval=interval, name=name)
        self._probes.append((probe, probe.resolve_interval(self.population_size)))
        return probe

    def add_convergence_detector(
        self, predicate: Callable[["Simulation"], bool], interval: int | None = None
    ) -> ConvergenceDetector:
        """Attach a :class:`ConvergenceDetector` probe and return it."""
        detector = ConvergenceDetector(predicate=predicate)
        self.add_probe(detector, interval=interval, name="convergence")
        return detector

    def _fire_probes(self) -> None:
        interactions = self.metrics.interactions
        for probe, interval in self._probes:
            if interactions % interval == 0:
                probe.callback(self)

    # -- stepping ----------------------------------------------------------------

    def _step_core(self) -> tuple[int, int, Any, Any, Any, Any]:
        """Advance one interaction; return the raw before/after facts.

        Shared by :meth:`step` (which wraps the facts in an
        :class:`InteractionEvent`) and the event-free fast path of
        :meth:`run_interactions`.
        """
        pair = self.scheduler.next_pair()
        receiver_id, sender_id = pair.receiver, pair.sender
        receiver_before = self.states[receiver_id]
        sender_before = self.states[sender_id]
        receiver_after, sender_after = self.protocol.transition(
            receiver_before, sender_before, self.rng
        )
        self.states[receiver_id] = receiver_after
        self.states[sender_id] = sender_after
        changed = receiver_after != receiver_before or sender_after != sender_before
        self.metrics.record_interaction(changed=changed)
        if self.metrics.state_usage is not None and changed:
            self.metrics.state_usage.observe(
                self.protocol.state_signature(receiver_after)
            )
            self.metrics.state_usage.observe(self.protocol.state_signature(sender_after))
        return (
            receiver_id,
            sender_id,
            receiver_before,
            sender_before,
            receiver_after,
            sender_after,
        )

    def step(self) -> InteractionEvent:
        """Execute a single interaction and return its event record."""
        (
            receiver_id,
            sender_id,
            receiver_before,
            sender_before,
            receiver_after,
            sender_after,
        ) = self._step_core()
        event = InteractionEvent(
            index=self.metrics.interactions,
            receiver=receiver_id,
            sender=sender_id,
            receiver_before=receiver_before,
            sender_before=sender_before,
            receiver_after=receiver_after,
            sender_after=sender_after,
        )
        if self.event_log is not None:
            self.event_log.append(event)
        if self._probes:
            self._fire_probes()
        return event

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions.

        When no event log is attached, interactions are driven through an
        event-free fast path: building an :class:`InteractionEvent` per step
        only to drop it costs a measurable fraction of the per-interaction
        budget at large interaction counts.
        """
        if count < 0:
            raise SimulationError(f"interaction count must be non-negative, got {count}")
        if self.event_log is not None:
            for _ in range(count):
                self.step()
            return
        for _ in range(count):
            self._step_core()
            if self._probes:
                self._fire_probes()

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.run_interactions(interactions_for_time(time, self.population_size))

    def run_until(
        self,
        predicate: Callable[["Simulation"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate`` holds; return the parallel time at that point.

        The predicate is evaluated every ``check_interval`` interactions
        (default: every ``n`` interactions, i.e. once per unit of parallel
        time).

        Raises
        ------
        ConvergenceError
            If the predicate never holds within ``max_parallel_time``.
        """
        interval = check_interval if check_interval is not None else self.population_size
        if interval <= 0:
            raise SimulationError("check_interval must be positive")
        budget = interactions_for_time(max_parallel_time, self.population_size)
        executed = 0
        if predicate(self):
            return self.metrics.parallel_time
        while executed < budget:
            chunk = min(interval, budget - executed)
            self.run_interactions(chunk)
            executed += chunk
            if predicate(self):
                return self.metrics.parallel_time
        raise ConvergenceError(
            f"predicate did not hold within {max_parallel_time} units of parallel time "
            f"(n={self.population_size}, interactions={self.metrics.interactions})"
        )

    # -- inspection ----------------------------------------------------------------

    def outputs(self) -> list[Any]:
        """Return the per-agent outputs as computed by the protocol."""
        return [self.protocol.output(state) for state in self.states]

    def configuration(self) -> Configuration:
        """Return the current population as a configuration multiset.

        State signatures (which are hashable) are used as the multiset
        elements, so this works for protocols with unhashable state objects
        too.
        """
        return Configuration.from_states(
            self.protocol.state_signature(state) for state in self.states
        )

    def agent_state(self, agent_id: int) -> Any:
        """Return the current state of one agent."""
        if not 0 <= agent_id < self.population_size:
            raise SimulationError(
                f"agent id {agent_id} out of range for population {self.population_size}"
            )
        return self.states[agent_id]

    def count_where(self, condition: Callable[[Any], bool]) -> int:
        """Count agents whose state satisfies ``condition``."""
        return sum(1 for state in self.states if condition(state))

    def report(
        self, detector: ConvergenceDetector | None = None
    ) -> SimulationReport:
        """Build a :class:`SimulationReport` from the current run state."""
        convergence_interaction = (
            detector.convergence_interaction if detector is not None else None
        )
        converged = detector.converged if detector is not None else False
        convergence_time = (
            convergence_interaction / self.population_size
            if convergence_interaction is not None
            else None
        )
        return SimulationReport(
            population_size=self.population_size,
            interactions=self.metrics.interactions,
            parallel_time=self.metrics.parallel_time,
            converged=converged,
            convergence_interaction=convergence_interaction,
            convergence_time=convergence_time,
            distinct_states=self.metrics.distinct_states,
            outputs=self.outputs(),
        )


def run_protocol(
    protocol: AgentProtocol,
    population_size: int,
    predicate: Callable[[Simulation], bool],
    max_parallel_time: float,
    seed: int | None = None,
    track_states: bool = False,
) -> tuple[Simulation, float]:
    """Convenience wrapper: build a simulation and run it until ``predicate``.

    Returns the simulation object (for inspection of final states/outputs) and
    the parallel time at which the predicate first held.
    """
    simulation = Simulation(
        protocol=protocol,
        population_size=population_size,
        seed=seed,
        track_states=track_states,
    )
    elapsed = simulation.run_until(predicate, max_parallel_time=max_parallel_time)
    return simulation, elapsed
