"""Convergence detection.

Section 2.1 of the paper defines an execution to *converge* at interaction
``i`` when configuration ``i`` is not correct but every later configuration
is; for the size-estimation protocol, "correct" means every agent's output is
within a fixed additive tolerance of ``log2 n``.  For the simulation in
Appendix C (Figure 2), convergence is detected when every agent has finished
the protocol (``epoch = 5 * logSize2``) — at which point, empirically, the
estimate is within additive error 2.

This module provides the pieces both notions need:

* predicate builders (:func:`all_agents_satisfy`,
  :func:`output_within_tolerance`) over the live simulation, and
* :class:`ConvergenceDetector`, a probe that records the first interaction
  index from which a predicate held continuously until the end of the run.

Because a predicate may hold transiently and then fail again (the output can
still change before the protocol settles), the detector clears its tentative
convergence point whenever the predicate is observed to fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

Predicate = Callable[[Any], bool]


def all_agents_satisfy(condition: Callable[[Any], bool]) -> Predicate:
    """Build a predicate that holds when every agent state satisfies ``condition``."""

    def predicate(simulation: Any) -> bool:
        return all(condition(state) for state in simulation.states)

    return predicate


def output_within_tolerance(tolerance: float) -> Predicate:
    """Predicate: every agent's numeric output is within ``tolerance`` of ``log2 n``.

    Agents whose output is ``None`` (undefined) make the predicate fail, in
    line with the paper's local output convention ("the output is undefined if
    some agents have different values").
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")

    def predicate(simulation: Any) -> bool:
        target = math.log2(simulation.population_size)
        for state in simulation.states:
            value = simulation.protocol.output(state)
            if value is None:
                return False
            try:
                error = abs(float(value) - target)
            except (TypeError, ValueError):
                return False
            if error > tolerance:
                return False
        return True

    return predicate


def stable_for(base: Predicate, consecutive_checks: int) -> Predicate:
    """Wrap ``base`` so it only holds after passing ``consecutive_checks`` times in a row.

    Useful for protocols whose output oscillates briefly; the returned
    predicate is stateful, so build a fresh one per run.
    """
    if consecutive_checks <= 0:
        raise ValueError("consecutive_checks must be positive")
    streak = {"count": 0}

    def predicate(simulation: Any) -> bool:
        if base(simulation):
            streak["count"] += 1
        else:
            streak["count"] = 0
        return streak["count"] >= consecutive_checks

    return predicate


@dataclass
class ConvergenceDetector:
    """Probe recording when a predicate starts holding permanently.

    The detector is invoked periodically (via the simulation's probe
    machinery).  It keeps the earliest interaction index at which the
    predicate was observed to hold with no later observed failure; if the
    predicate fails again, the tentative point is discarded.

    Attributes
    ----------
    predicate:
        The convergence condition, evaluated against the simulation.
    convergence_interaction:
        Interaction index of the first check in the current uninterrupted
        streak of successes, or ``None`` if the predicate is not currently
        holding.
    """

    predicate: Predicate
    convergence_interaction: int | None = None
    checks_performed: int = field(default=0)
    _holding: bool = field(default=False, repr=False)

    def __call__(self, simulation: Any) -> None:
        """Probe entry point: evaluate the predicate against ``simulation``."""
        self.checks_performed += 1
        if self.predicate(simulation):
            if not self._holding:
                self._holding = True
                self.convergence_interaction = simulation.metrics.interactions
        else:
            self._holding = False
            self.convergence_interaction = None

    @property
    def converged(self) -> bool:
        """Whether the predicate currently holds (and has a recorded start)."""
        return self._holding and self.convergence_interaction is not None

    def convergence_time(self, population_size: int) -> float | None:
        """Parallel time of the recorded convergence point, or ``None``."""
        if self.convergence_interaction is None:
            return None
        return self.convergence_interaction / population_size
