"""Population configurations as multisets of states.

A *configuration* ``c`` (Section 2 of the paper) is a vector indexed by
states, where ``c(s)`` is the number of agents currently in state ``s``.  The
class below is a thin, validated wrapper around a ``Counter`` that adds the
operations the rest of the library needs:

* density queries (``alpha``-dense configurations are central to Theorem 4.1),
* comparison ``<=`` (used in the Dickson's-lemma argument of the
  impossibility proof), and
* application of transitions for the count-based engine.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Configuration:
    """Immutable multiset of agent states.

    Parameters
    ----------
    counts:
        Mapping from state to its (non-negative) count.  Zero-count entries
        are dropped.
    """

    counts: Mapping[Hashable, int]

    def __post_init__(self) -> None:
        cleaned: dict[Hashable, int] = {}
        for state, count in self.counts.items():
            if not isinstance(count, int):
                raise ConfigurationError(
                    f"count of state {state!r} must be an int, got {type(count).__name__}"
                )
            if count < 0:
                raise ConfigurationError(
                    f"count of state {state!r} must be non-negative, got {count}"
                )
            if count > 0:
                cleaned[state] = count
        object.__setattr__(self, "counts", cleaned)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_states(cls, states: Iterable[Hashable]) -> "Configuration":
        """Build a configuration from an iterable of per-agent states."""
        return cls(Counter(states))

    @classmethod
    def uniform(cls, state: Hashable, n: int) -> "Configuration":
        """The all-identical configuration with ``n`` agents in ``state``."""
        if n <= 0:
            raise ConfigurationError(f"population size must be positive, got {n}")
        return cls({state: n})

    # -- basic queries ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of agents ``n = ||c||``."""
        return sum(self.counts.values())

    def count(self, state: Hashable) -> int:
        """Count of ``state`` (0 if absent)."""
        return self.counts.get(state, 0)

    def states_present(self) -> frozenset[Hashable]:
        """The set of states with positive count."""
        return frozenset(self.counts)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.counts)

    def __len__(self) -> int:
        """Number of *distinct* states present."""
        return len(self.counts)

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Iterate over ``(state, count)`` pairs."""
        return iter(self.counts.items())

    # -- density (Section 4) ---------------------------------------------------

    def is_alpha_dense(self, alpha: float) -> bool:
        """Return ``True`` if every state present has count ``>= alpha * n``.

        This is the paper's definition of an ``alpha``-dense configuration;
        in particular a configuration containing a state of count 1 (a
        leader) is not ``alpha``-dense for any ``alpha > 1/n``.
        """
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        threshold = alpha * self.size
        return all(count >= threshold for count in self.counts.values())

    def density_floor(self) -> float:
        """Return the largest ``alpha`` for which this configuration is dense.

        Equal to ``min_s c(s) / n`` over states present.
        """
        if not self.counts:
            raise ConfigurationError("empty configuration has no density floor")
        return min(self.counts.values()) / self.size

    # -- ordering / arithmetic -------------------------------------------------

    def __le__(self, other: "Configuration") -> bool:
        """Pointwise comparison: ``self <= other`` iff every count is <=.

        This is the partial order used with Dickson's lemma in the proof of
        Theorem 4.1 (an infinite sequence of configurations has an infinite
        nondecreasing subsequence).
        """
        return all(other.count(state) >= count for state, count in self.counts.items())

    def __add__(self, other: "Configuration") -> "Configuration":
        merged = Counter(self.counts)
        merged.update(other.counts)
        return Configuration(merged)

    def scale(self, factor: int) -> "Configuration":
        """Return the configuration with every count multiplied by ``factor``.

        Used to build the growing sequence of dense initial configurations in
        the termination experiments.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return Configuration({state: count * factor for state, count in self.counts.items()})

    # -- transition application (count-based engine) ---------------------------

    def apply_transition(
        self,
        receiver_in: Hashable,
        sender_in: Hashable,
        receiver_out: Hashable,
        sender_out: Hashable,
    ) -> "Configuration":
        """Return the configuration after one interaction.

        Raises
        ------
        ConfigurationError
            If the input states are not available in sufficient count (two
            copies are needed when ``receiver_in == sender_in``).
        """
        needed = Counter([receiver_in, sender_in])
        for state, required in needed.items():
            if self.count(state) < required:
                raise ConfigurationError(
                    f"cannot apply transition: need {required} agent(s) in state "
                    f"{state!r} but only {self.count(state)} present"
                )
        updated = Counter(self.counts)
        updated[receiver_in] -= 1
        updated[sender_in] -= 1
        updated[receiver_out] += 1
        updated[sender_out] += 1
        return Configuration(updated)

    # -- misc -------------------------------------------------------------------

    def to_counter(self) -> Counter:
        """Return a mutable ``Counter`` copy of the counts."""
        return Counter(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{state!r}: {count}" for state, count in sorted(
            self.counts.items(), key=lambda item: repr(item[0])
        ))
        return f"Configuration({{{inner}}})"
