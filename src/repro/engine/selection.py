"""Engine selection for configuration-level experiments.

Five engines can run a :class:`~repro.protocols.base.FiniteStateProtocol`:

``"agent"``
    The reference agent-level :class:`~repro.engine.simulator.Simulation`
    (via :meth:`FiniteStateProtocol.as_agent_protocol`) — exact paper
    semantics, ``O(n)`` memory, slowest; use it for small ``n`` and for
    cross-validating the other engines.
``"count"``
    :class:`~repro.engine.count_simulator.CountSimulator` — ``O(|states|)``
    memory, one Python step per interaction.
``"batched"``
    :class:`~repro.engine.batched_simulator.BatchedCountSimulator` —
    multinomial batches of ``~sqrt(n)`` interactions over compiled transition
    tables; the fastest for ``n >= 10^5``.
``"vector"``
    :class:`~repro.engine.vector.VectorFiniteStateSimulator` — per-agent
    state in numpy arrays, one synchronous random-matching round per step
    (a scheduling substitution: exact convergence measurement, constant-
    factor time agreement with the sequential engines; see ``DESIGN.md``).
    The same engine also runs the non-finite-state vector kernels
    (``Log-Size-Estimation``, the Theorem 3.13 leader-terminating protocol)
    through :class:`~repro.engine.vector.VectorSimulator` directly.
``"multiscale"``
    :class:`~repro.crn.multiscale.MultiscaleSimulator` — adaptive exact-SSA /
    tau-leap / mean-field-ODE regime switching over the compiled channel
    propensities; *approximate* (validated in distribution, not bitwise) but
    count-bound instead of interaction-bound, reaching ``n = 10^9``–``10^12``.
    Uniform mixing only: its propensity model is the mean-field limit of the
    sequential scheduler, so it consumes the ``"mean-field"`` capability that
    only the ``sequential`` policy carries.

:func:`build_engine` hides the choice behind one constructor, and
:class:`CountingSimulationAdapter` gives the agent engine the same
count-level interface (``count`` / ``configuration`` / ``run_until`` /
``run_with_trace``) as the other two, so harness code, the CLI and the
benchmarks can treat the engine as a string parameter.  The scheduler is a
second string parameter (``build_engine(..., scheduler=...)``): each engine
consumes one scheduler-policy capability
(:data:`ENGINE_SCHEDULER_CAPABILITY`), which together with the policies'
declared capabilities forms the engine × scheduler compatibility matrix
(:func:`engine_scheduler_matrix`; printed by ``repro engines``).  See
``DESIGN.md`` (Engine selection, Schedulers) for guidance on which engine
and scheduler fit which experiment.
"""

from __future__ import annotations

import warnings
from collections import Counter
from typing import Callable, Hashable, Mapping, Union

from repro.backend import ArrayBackend, resolve_backend
from repro.crn.multiscale import MultiscaleSimulator
from repro.engine.batched_simulator import BatchedCountSimulator
from repro.engine.configuration import Configuration
from repro.engine.count_simulator import CountSimulator
from repro.engine.running import (
    CountTracePoint,
    run_until_predicate,
    run_with_trace,
)
from repro.engine.scheduler import (
    SchedulerSpec,
    get_scheduler_policy,
    scheduler_names,
)
from repro.engine.simulator import Simulation
from repro.engine.vector import VectorFiniteStateSimulator
from repro.exceptions import SimulationError
from repro.protocols.base import FiniteStateProtocol

__all__ = [
    "DEFAULT_SCHEDULERS",
    "ENGINE_NAMES",
    "ENGINE_SCHEDULER_CAPABILITY",
    "SEQUENTIAL_ENGINE_NAMES",
    "CountingSimulationAdapter",
    "build_engine",
    "engine_scheduler_matrix",
    "resolve_scheduler_spec",
    "schedulers_for_engine",
]

#: The engine identifiers accepted by :func:`build_engine` (and the CLI).
ENGINE_NAMES = ("agent", "count", "batched", "vector", "multiscale")

#: Which scheduler-policy capability each engine consumes: the agent engine
#: takes any per-pair stream, the count-level engines any policy exposing
#: per-state interaction weights, the vector engine any round scheduler, and
#: the multiscale engine the uniform well-mixed pair distribution its
#: mean-field propensity model presupposes (``"mean-field"``, carried only
#: by the sequential policy — non-uniform scenarios cannot be expressed as
#: count-level propensities and are rejected with a clear error).
#: Together with each policy's declared capabilities this *is* the
#: engine × scheduler compatibility matrix (``repro engines`` prints it).
ENGINE_SCHEDULER_CAPABILITY = {
    "agent": "pair",
    "count": "counts",
    "batched": "counts",
    "vector": "rounds",
    "multiscale": "mean-field",
}

#: The scheduler used when a caller does not choose one: the paper's
#: sequential policy wherever it is expressible, the matching substitution
#: on the round-based vector engine.
DEFAULT_SCHEDULERS = {
    "agent": "sequential",
    "count": "sequential",
    "batched": "sequential",
    "vector": "matching",
    "multiscale": "sequential",
}


def schedulers_for_engine(engine: str) -> tuple[str, ...]:
    """Registered scheduler names the given engine can run."""
    try:
        capability = ENGINE_SCHEDULER_CAPABILITY[engine]
    except KeyError:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINE_NAMES)}"
        ) from None
    return tuple(
        name
        for name in scheduler_names()
        if capability in get_scheduler_policy(name).capabilities
    )


def engine_scheduler_matrix() -> dict[str, tuple[str, ...]]:
    """The full engine × scheduler compatibility matrix."""
    return {engine: schedulers_for_engine(engine) for engine in ENGINE_NAMES}


def resolve_scheduler_spec(
    engine: str,
    scheduler: SchedulerSpec | str | None,
    scheduler_options: Mapping[str, object] | None = None,
) -> SchedulerSpec:
    """Coerce a scheduler choice for ``engine``, validating compatibility.

    Besides the engine × scheduler compatibility check, option names are
    validated and option values type-coerced against the policy's declared
    :attr:`~repro.engine.scheduler.SchedulerPolicy.option_types` — an
    unknown ``--scheduler-opt`` key or an uncoercible value (``intra=abc``)
    raises a :class:`SimulationError` here, before any policy constructor
    sees a raw string.
    """
    spec = SchedulerSpec.coerce(
        scheduler, default=DEFAULT_SCHEDULERS[engine], options=scheduler_options
    )
    supported = schedulers_for_engine(engine)
    if spec.name not in supported:
        raise SimulationError(
            f"scheduler {spec.name!r} is not compatible with the {engine} engine; "
            f"supported: {', '.join(supported)} (see `repro engines`)"
        )
    return spec.coerced()


#: The engines whose default scheduler is the exact sequential uniform-pair
#: policy (derived from the compatibility matrix; the vector engine
#: substitutes synchronous matching rounds, agreeing only up to constant
#: factors in time — see ``DESIGN.md``, Schedulers).
SEQUENTIAL_ENGINE_NAMES = tuple(
    engine for engine in ENGINE_NAMES if DEFAULT_SCHEDULERS[engine] == "sequential"
)

CountLevelEngine = Union[
    "CountingSimulationAdapter",
    CountSimulator,
    BatchedCountSimulator,
    VectorFiniteStateSimulator,
    "MultiscaleSimulator",
]


class CountingSimulationAdapter:
    """Run a finite-state protocol on the agent engine behind the count API.

    Wraps a :class:`Simulation` over ``protocol.as_agent_protocol()`` and
    exposes the configuration-level interface shared by
    :class:`CountSimulator` and :class:`BatchedCountSimulator`, so
    engine-generic code (predicates written against ``.count(state)``,
    tracing, ``run_until``) works unchanged.  Count queries are ``O(n)`` —
    acceptable at the small populations where the agent engine is the right
    choice anyway.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        scheduler: SchedulerSpec | str | None = None,
    ) -> None:
        self.protocol = protocol
        self.population_size = population_size
        initial_states = None
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            initial_states = [
                state
                for state, count in sorted(
                    initial_configuration.items(), key=lambda item: repr(item[0])
                )
                for _ in range(count)
            ]
        self.simulation = Simulation(
            protocol=protocol.as_agent_protocol(),
            population_size=population_size,
            seed=seed,
            scheduler=scheduler,
            initial_states=initial_states,
        )

    @property
    def interactions(self) -> int:
        """Interactions executed so far."""
        return self.simulation.metrics.interactions

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.simulation.metrics.parallel_time

    def configuration(self) -> Configuration:
        """Return the current configuration multiset."""
        return self.simulation.configuration()

    def count(self, state: Hashable) -> int:
        """Return the number of agents currently in ``state``."""
        return self.simulation.count_where(lambda current: current == state)

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        return Counter(self.simulation.outputs())

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions."""
        self.simulation.run_interactions(count)

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.simulation.run_parallel_time(time)

    def run_until(
        self,
        predicate: Callable[["CountingSimulationAdapter"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached."""
        return run_until_predicate(self, predicate, max_parallel_time, check_interval)

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time``; return evenly spaced snapshots."""
        return run_with_trace(self, total_parallel_time, samples)


def build_engine(
    engine: str,
    protocol: FiniteStateProtocol,
    population_size: int,
    seed: int | None = None,
    initial_configuration: Configuration | None = None,
    scheduler: SchedulerSpec | str | None = None,
    scheduler_options: Mapping[str, object] | None = None,
    backend: "ArrayBackend | str | None" = None,
    **engine_options,
) -> CountLevelEngine:
    """Construct the requested engine for ``protocol`` at ``population_size``.

    Parameters
    ----------
    engine:
        One of :data:`ENGINE_NAMES` (``"agent"``, ``"count"``, ``"batched"``,
        ``"vector"``, ``"multiscale"``).
    scheduler:
        Scheduling policy: a registered name or a
        :class:`~repro.engine.scheduler.SchedulerSpec`.  ``None`` selects the
        engine's default (:data:`DEFAULT_SCHEDULERS`).  The (engine,
        scheduler) pair is validated against the compatibility matrix
        (:func:`engine_scheduler_matrix`) before the engine is built.
    scheduler_options:
        Options for a scheduler given by name (e.g. ``{"intra": 0.95}``).
    backend:
        Array backend for the hot kernels (:mod:`repro.backend`): a
        registered name (``"numpy"``, ``"numba"``, ``"native"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for the
        process default (``REPRO_BACKEND`` or numpy).  Consumed by the
        batched, vector and multiscale engines; the per-interaction
        reference engines (agent, count) always run plain Python/numpy and
        warn if a non-default backend is requested for them.
    engine_options:
        Extra keyword arguments forwarded to the engine constructor (the
        batched engine takes ``batch_size`` / ``small_count_threshold``, the
        multiscale engine ``leap_eps`` / ``regime_thresholds``).

    Raises
    ------
    SimulationError
        For an unknown engine name, an incompatible (engine, scheduler)
        combination, or options the engine does not accept.
    """
    if engine not in ENGINE_NAMES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINE_NAMES)}"
        )
    spec = resolve_scheduler_spec(engine, scheduler, scheduler_options)
    if engine in ("agent", "count") and backend is not None:
        resolved = resolve_backend(backend)
        if resolved.name != "numpy":
            warnings.warn(
                f"the {engine} engine is a per-interaction reference "
                f"implementation and always runs the numpy code path; "
                f"ignoring backend {resolved.name!r}",
                UserWarning,
                stacklevel=2,
            )
    if engine == "agent":
        if engine_options:
            raise SimulationError(
                f"the agent engine accepts no extra options, got {sorted(engine_options)}"
            )
        return CountingSimulationAdapter(
            protocol, population_size, seed=seed,
            initial_configuration=initial_configuration,
            scheduler=spec,
        )
    if engine == "count":
        if engine_options:
            raise SimulationError(
                f"the count engine accepts no extra options, got {sorted(engine_options)}"
            )
        return CountSimulator(
            protocol, population_size, seed=seed,
            initial_configuration=initial_configuration,
            scheduler=spec,
        )
    if engine == "batched":
        allowed = {"batch_size", "small_count_threshold"}
        unknown = set(engine_options) - allowed
        if unknown:
            raise SimulationError(
                f"the batched engine does not accept options {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        return BatchedCountSimulator(
            protocol, population_size, seed=seed,
            initial_configuration=initial_configuration,
            scheduler=spec,
            backend=backend,
            **engine_options,
        )
    if engine == "vector":
        if engine_options:
            raise SimulationError(
                f"the vector engine accepts no extra options, got {sorted(engine_options)}"
            )
        return VectorFiniteStateSimulator(
            protocol, population_size, seed=seed,
            initial_configuration=initial_configuration,
            scheduler=spec,
            backend=backend,
        )
    if engine == "multiscale":
        allowed = {"leap_eps", "regime_thresholds"}
        unknown = set(engine_options) - allowed
        if unknown:
            raise SimulationError(
                f"the multiscale engine does not accept options {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        return MultiscaleSimulator(
            protocol, population_size, seed=seed,
            initial_configuration=initial_configuration,
            scheduler=spec,
            backend=backend,
            **engine_options,
        )
    # Unreachable while ENGINE_NAMES and the branches above stay in sync;
    # a name added to ENGINE_NAMES without a branch must fail loudly rather
    # than fall through to some other engine.
    raise SimulationError(f"engine {engine!r} has no construction branch")
