"""Configuration-level (count-based) simulation of finite-state protocols.

For a constant-state protocol the population configuration is fully described
by the count of each state, so a simulation step only needs to

1. sample the ordered pair of *states* participating in the next interaction
   (with probability proportional to the product of their counts, adjusting
   for ordered pairs of the same state), and
2. move one agent from each input state to the corresponding output state.

This keeps memory at ``O(|states|)`` and each step at amortised
``O(log |states|)`` (cumulative sampling weights are cached and rebuilt only
after a count actually changes) instead of ``O(n)``, which is what lets the
epidemic, majority, leader-election and exact-counting baselines — and the
dense-configuration termination experiments — run at populations of 10^5–10^7
in pure Python.  For still larger populations, or many repeated runs, prefer
the batched engine
(:class:`repro.engine.batched_simulator.BatchedCountSimulator`).

The engine consumes a *count-level scheduler policy*
(:class:`~repro.engine.scheduler.SchedulerPolicy` with the ``"counts"``
capability): under the default ``"sequential"`` policy the semantics match
the sequential agent-level engine exactly — the same uniform-random
ordered-pair scheduler, just expressed over counts (and draw-for-draw
identical to the historical built-in sampling).  Under the
``"state-weighted"`` policy, pair probabilities are proportional to
``(r_i c_i)(r_j c_j)`` for per-state activity rates ``r`` — the
agent-anonymous form of non-uniform scheduling that count compression can
express.  Per-agent policies (``weighted``, ``two-block``, ``quiescing``)
distinguish agents sharing a state and are rejected; run those on the agent
or vector engines (see ``DESIGN.md``, Schedulers).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Callable, Hashable

from repro.engine.configuration import Configuration
from repro.engine.running import (
    CountTracePoint,
    run_until_predicate,
    run_with_trace,
)
from repro.engine.scheduler import SchedulerSpec
from repro.exceptions import SimulationError
from repro.protocols.base import FiniteStateProtocol
from repro.rng import RandomSource
from repro.types import interactions_for_time

__all__ = ["CountSimulator", "CountTracePoint"]


class CountSimulator:
    """Simulate a :class:`~repro.protocols.base.FiniteStateProtocol` by counts.

    Parameters
    ----------
    protocol:
        The finite-state protocol to simulate.
    population_size:
        Number of agents.  The initial configuration is built from
        ``protocol.initial_state(agent_id)`` unless ``initial_configuration``
        is supplied.
    seed:
        Seed for the random source.
    initial_configuration:
        Optional explicit starting configuration; its size must equal
        ``population_size``.
    scheduler:
        Count-level scheduling policy: a registered scheduler name or a
        :class:`~repro.engine.scheduler.SchedulerSpec`.  Defaults to
        ``"sequential"``; the policy must support count compression
        (``"sequential"`` or ``"state-weighted"``).
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        scheduler: "SchedulerSpec | str | None" = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.protocol = protocol
        self.population_size = population_size
        self.rng = RandomSource(seed=seed)
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            self._counts: Counter = initial_configuration.to_counter()
        else:
            self._counts = Counter(
                protocol.initial_state(agent_id) for agent_id in range(population_size)
            )
        self.scheduler_spec = SchedulerSpec.coerce(scheduler)
        # Raises SimulationError for per-agent policies, which cannot be
        # count-compressed; None means uniform (the exact integer fast path).
        policy = self.scheduler_spec.build_policy()
        self._rate_of = policy.state_rate_function()
        if self._rate_of is not None:
            # Validates that every configured rate names a protocol state
            # (a typo would silently run the uniform scheduler otherwise).
            policy.state_rates(list(protocol.states()))
        self.interactions = 0
        self._states_seen: set[Hashable] = set(self._counts)
        # Cached cumulative weights for state sampling; rebuilt lazily after
        # any count change (null transitions, the common case at large n,
        # leave the cache valid).  Integer agent counts under the uniform
        # policy, float rate-scaled weights under state-weighted.
        self._cum_states: list[Hashable] = []
        self._cum_weights: list[int | float] = []
        self._cum_prefix: dict[Hashable, int | float] = {}
        self._cum_total: float = 0.0
        self._positive_rate_agents = 0
        self._cum_dirty = True

    # -- inspection -------------------------------------------------------------

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.interactions / self.population_size

    def configuration(self) -> Configuration:
        """Return the current configuration (immutable copy)."""
        return Configuration(dict(self._counts))

    def count(self, state: Hashable) -> int:
        """Return the current count of ``state``."""
        return self._counts.get(state, 0)

    def states_seen(self) -> frozenset[Hashable]:
        """All states that have had positive count at any point of the run."""
        return frozenset(self._states_seen)

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        histogram: Counter = Counter()
        for state, count in self._counts.items():
            histogram[self.protocol.output(state)] += count
        return histogram

    # -- stepping -----------------------------------------------------------------

    def _sample_ordered_state_pair(self) -> tuple[Hashable, Hashable]:
        """Sample the (receiver-state, sender-state) of the next interaction.

        Under the uniform policy this is equivalent to sampling a uniform
        ordered pair of distinct agents and reading off their states: the
        probability of the ordered state pair ``(a, b)`` with ``a != b`` is
        ``c(a) c(b) / (n (n-1))`` and of ``(a, a)`` is
        ``c(a) (c(a)-1) / (n (n-1))``.  Implemented by sampling the receiver
        agent uniformly, then the sender uniformly among the remaining
        ``n - 1`` agents.

        Under a state-weighted policy, the ordered pair of distinct agents
        ``(a, b)`` is selected with probability proportional to the *product*
        of the agents' rates ``r_a r_b`` — the same joint distribution the
        batched engine's multinomial draws from (see
        :meth:`BatchedCountSimulator._pair_probabilities`).  Implemented by
        two independent rate-weighted draws with same-agent rejection: after
        drawing states ``(i, i)``, the two draws hit the same agent with
        probability ``1 / c_i``, in which case the pair is redrawn.
        """
        if self._rate_of is None:
            receiver_state = self._sample_state_weighted(exclude=None)
            sender_state = self._sample_state_weighted(exclude=receiver_state)
            return receiver_state, sender_state
        if self._cum_dirty:
            self._rebuild_cumulative()
        if self._positive_rate_agents < 2:
            raise SimulationError(
                "state-weighted scheduler: fewer than two agents have a "
                "positive rate; no ordered pair can be selected"
            )
        while True:
            receiver_state = self._sample_state_weighted(exclude=None)
            sender_state = self._sample_state_weighted(exclude=None)
            if receiver_state != sender_state:
                return receiver_state, sender_state
            count = self._counts[receiver_state]
            if count < 2:
                continue  # the two draws can only be the same agent
            if self.rng.random() * count >= 1.0:
                return receiver_state, sender_state

    def _rebuild_cumulative(self) -> None:
        """Rebuild the cached cumulative-weight arrays from the counts.

        Under the uniform policy the weights are the integer counts; under a
        state-weighted policy each state's weight is ``rate(state) * count``.
        """
        states: list[Hashable] = []
        weights: list[int | float] = []
        prefix: dict[Hashable, int | float] = {}
        total: int | float = 0 if self._rate_of is None else 0.0
        positive_agents = 0
        for state, count in self._counts.items():
            prefix[state] = total
            if self._rate_of is None:
                total += count
            else:
                rate = self._rate_of(state)
                total += rate * count
                if rate > 0:
                    positive_agents += count
            states.append(state)
            weights.append(total)
        self._cum_states = states
        self._cum_weights = weights
        self._cum_prefix = prefix
        self._cum_total = total
        self._positive_rate_agents = positive_agents
        self._cum_dirty = False

    def _sample_state_weighted(self, exclude: Hashable | None) -> Hashable:
        """Sample a state with probability proportional to its sampling weight.

        Uniform policy: integer agent-count weights; when ``exclude`` is
        given, one agent of that state is set aside (it is the already-chosen
        receiver), so its weight is reduced by one.  Uses cached cumulative
        weights and binary search, equivalent draw-for-draw to the original
        linear scan (thresholds at or past the excluded agent's slot are
        shifted up by one, which is exactly a scan with the excluded state's
        weight reduced by one).

        State-weighted policy: float ``rate * count`` weights, no exclusion —
        the distinct-agents constraint is handled by the caller's rejection
        step (:meth:`_sample_ordered_state_pair`).
        """
        if self._cum_dirty:
            self._rebuild_cumulative()
        if self._rate_of is None:
            if exclude is None:
                threshold = self.rng.randrange(self.population_size)
            else:
                threshold = self.rng.randrange(self.population_size - 1)
                if threshold >= self._cum_prefix[exclude] + self._counts[exclude] - 1:
                    threshold += 1
        else:
            if self._cum_total <= 0.0:
                raise SimulationError(
                    "state-weighted scheduler: every present state has rate 0"
                )
            threshold = self.rng.random() * self._cum_total
        position = bisect_right(self._cum_weights, threshold)
        if position >= len(self._cum_states):
            if self._rate_of is None:
                raise SimulationError("state sampling failed; counts are inconsistent")
            position = len(self._cum_states) - 1  # float rounding at the top edge
        return self._cum_states[position]

    def step(self) -> None:
        """Execute one interaction."""
        receiver_state, sender_state = self._sample_ordered_state_pair()
        outcomes = self.protocol.transitions(receiver_state, sender_state)
        self.interactions += 1
        if not outcomes:
            return
        draw = self.rng.random()
        cumulative = 0.0
        chosen = None
        for outcome in outcomes:
            cumulative += outcome.probability
            if draw < cumulative:
                chosen = outcome
                break
        if chosen is None:
            return  # residual mass = null transition
        if (chosen.receiver_out, chosen.sender_out) == (receiver_state, sender_state):
            return
        self._counts[receiver_state] -= 1
        self._counts[sender_state] -= 1
        self._counts[chosen.receiver_out] += 1
        self._counts[chosen.sender_out] += 1
        self._states_seen.add(chosen.receiver_out)
        self._states_seen.add(chosen.sender_out)
        for state in (receiver_state, sender_state):
            if self._counts[state] == 0:
                del self._counts[state]
        self._cum_dirty = True

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions."""
        if count < 0:
            raise SimulationError(f"interaction count must be non-negative, got {count}")
        for _ in range(count):
            self.step()

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.run_interactions(interactions_for_time(time, self.population_size))

    def run_until(
        self,
        predicate: Callable[["CountSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached.

        Raises
        ------
        ConvergenceError
            If the predicate does not hold within ``max_parallel_time``.
        """
        return run_until_predicate(self, predicate, max_parallel_time, check_interval)

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time``; return evenly spaced snapshots.

        See :func:`repro.engine.running.run_with_trace`: the initial
        configuration plus exactly ``samples`` checkpoints at the exact
        boundaries of :func:`repro.types.snapshot_boundaries` whenever the
        run is at least ``samples`` interactions long (chunking by
        ``total // samples``, as this method once did, could return far more
        or fewer snapshots than requested).
        """
        return run_with_trace(self, total_parallel_time, samples)
