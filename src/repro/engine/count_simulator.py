"""Configuration-level (count-based) simulation of finite-state protocols.

For a constant-state protocol the population configuration is fully described
by the count of each state, so a simulation step only needs to

1. sample the ordered pair of *states* participating in the next interaction
   (with probability proportional to the product of their counts, adjusting
   for ordered pairs of the same state), and
2. move one agent from each input state to the corresponding output state.

This keeps memory at ``O(|states|)`` and each step at ``O(|states|)`` instead
of ``O(n)``, which is what lets the epidemic, majority, leader-election and
exact-counting baselines — and the dense-configuration termination
experiments — run at populations of 10^5–10^7 in pure Python.

The semantics match the sequential agent-level engine exactly: the same
uniform-random ordered-pair scheduler, just expressed over counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.engine.configuration import Configuration
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.base import FiniteStateProtocol
from repro.rng import RandomSource
from repro.types import interactions_for_time


@dataclass
class CountTracePoint:
    """One sampled configuration of a count-level run."""

    interaction: int
    parallel_time: float
    configuration: Configuration


class CountSimulator:
    """Simulate a :class:`~repro.protocols.base.FiniteStateProtocol` by counts.

    Parameters
    ----------
    protocol:
        The finite-state protocol to simulate.
    population_size:
        Number of agents.  The initial configuration is built from
        ``protocol.initial_state(agent_id)`` unless ``initial_configuration``
        is supplied.
    seed:
        Seed for the random source.
    initial_configuration:
        Optional explicit starting configuration; its size must equal
        ``population_size``.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        self.protocol = protocol
        self.population_size = population_size
        self.rng = RandomSource(seed=seed)
        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            self._counts: Counter = initial_configuration.to_counter()
        else:
            self._counts = Counter(
                protocol.initial_state(agent_id) for agent_id in range(population_size)
            )
        self.interactions = 0
        self._states_seen: set[Hashable] = set(self._counts)

    # -- inspection -------------------------------------------------------------

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.interactions / self.population_size

    def configuration(self) -> Configuration:
        """Return the current configuration (immutable copy)."""
        return Configuration(dict(self._counts))

    def count(self, state: Hashable) -> int:
        """Return the current count of ``state``."""
        return self._counts.get(state, 0)

    def states_seen(self) -> frozenset[Hashable]:
        """All states that have had positive count at any point of the run."""
        return frozenset(self._states_seen)

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        histogram: Counter = Counter()
        for state, count in self._counts.items():
            histogram[self.protocol.output(state)] += count
        return histogram

    # -- stepping -----------------------------------------------------------------

    def _sample_ordered_state_pair(self) -> tuple[Hashable, Hashable]:
        """Sample the (receiver-state, sender-state) of the next interaction.

        Equivalent to sampling a uniform ordered pair of distinct agents and
        reading off their states: the probability of the ordered state pair
        ``(a, b)`` with ``a != b`` is ``c(a) c(b) / (n (n-1))`` and of
        ``(a, a)`` is ``c(a) (c(a)-1) / (n (n-1))``.

        Implemented by sampling the receiver agent uniformly by state weight,
        then the sender uniformly among the remaining ``n - 1`` agents.
        """
        n = self.population_size
        receiver_state = self._sample_state_weighted(exclude=None)
        sender_state = self._sample_state_weighted(exclude=receiver_state)
        return receiver_state, sender_state

    def _sample_state_weighted(self, exclude: Hashable | None) -> Hashable:
        """Sample a state with probability proportional to its count.

        When ``exclude`` is given, one agent of that state is set aside (it is
        the already-chosen receiver), so its weight is reduced by one.
        """
        total = self.population_size if exclude is None else self.population_size - 1
        threshold = self.rng.randrange(total)
        cumulative = 0
        for state, count in self._counts.items():
            weight = count - 1 if state == exclude else count
            cumulative += weight
            if threshold < cumulative:
                return state
        raise SimulationError("state sampling failed; counts are inconsistent")

    def step(self) -> None:
        """Execute one interaction."""
        receiver_state, sender_state = self._sample_ordered_state_pair()
        outcomes = self.protocol.transitions(receiver_state, sender_state)
        self.interactions += 1
        if not outcomes:
            return
        draw = self.rng.random()
        cumulative = 0.0
        chosen = None
        for outcome in outcomes:
            cumulative += outcome.probability
            if draw < cumulative:
                chosen = outcome
                break
        if chosen is None:
            return  # residual mass = null transition
        if (chosen.receiver_out, chosen.sender_out) == (receiver_state, sender_state):
            return
        self._counts[receiver_state] -= 1
        self._counts[sender_state] -= 1
        self._counts[chosen.receiver_out] += 1
        self._counts[chosen.sender_out] += 1
        self._states_seen.add(chosen.receiver_out)
        self._states_seen.add(chosen.sender_out)
        for state in (receiver_state, sender_state):
            if self._counts[state] == 0:
                del self._counts[state]

    def run_interactions(self, count: int) -> None:
        """Execute exactly ``count`` additional interactions."""
        if count < 0:
            raise SimulationError(f"interaction count must be non-negative, got {count}")
        for _ in range(count):
            self.step()

    def run_parallel_time(self, time: float) -> None:
        """Execute (at least) ``time`` additional units of parallel time."""
        self.run_interactions(interactions_for_time(time, self.population_size))

    def run_until(
        self,
        predicate: Callable[["CountSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time reached.

        Raises
        ------
        ConvergenceError
            If the predicate does not hold within ``max_parallel_time``.
        """
        interval = check_interval if check_interval is not None else self.population_size
        if interval <= 0:
            raise SimulationError("check_interval must be positive")
        budget = interactions_for_time(max_parallel_time, self.population_size)
        executed = 0
        if predicate(self):
            return self.parallel_time
        while executed < budget:
            chunk = min(interval, budget - executed)
            self.run_interactions(chunk)
            executed += chunk
            if predicate(self):
                return self.parallel_time
        raise ConvergenceError(
            f"predicate did not hold within {max_parallel_time} units of parallel time "
            f"(n={self.population_size})"
        )

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time`` and return ``samples`` evenly spaced snapshots.

        The initial configuration is always included as the first point.
        """
        if samples < 1:
            raise SimulationError("samples must be at least 1")
        total_interactions = interactions_for_time(
            total_parallel_time, self.population_size
        )
        chunk = max(1, total_interactions // samples)
        trace = [
            CountTracePoint(
                interaction=self.interactions,
                parallel_time=self.parallel_time,
                configuration=self.configuration(),
            )
        ]
        executed = 0
        while executed < total_interactions:
            step = min(chunk, total_interactions - executed)
            self.run_interactions(step)
            executed += step
            trace.append(
                CountTracePoint(
                    interaction=self.interactions,
                    parallel_time=self.parallel_time,
                    configuration=self.configuration(),
                )
            )
        return trace
