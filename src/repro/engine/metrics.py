"""Metric collection for simulations.

The paper measures three quantities: *parallel time* to convergence, the
*number of distinct states* used (space complexity), and the *accuracy* of the
output.  :class:`SimulationMetrics` accumulates the first two during a run;
accuracy is protocol-specific and computed by the harness from the final
outputs.

:class:`StateUsageTracker` maintains the set of distinct state signatures seen
during a run, which is how we reproduce the Lemma 3.9 state-complexity table
(the paper counts the possible values of each field; we report both the
per-field ranges and the realised number of distinct states).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class StateUsageTracker:
    """Tracks the distinct state signatures observed during a run."""

    signatures: set[Hashable] = field(default_factory=set)

    def observe(self, signature: Hashable) -> None:
        """Record a state signature."""
        self.signatures.add(signature)

    def observe_many(self, signatures) -> None:
        """Record an iterable of state signatures."""
        self.signatures.update(signatures)

    @property
    def distinct_states(self) -> int:
        """Number of distinct states seen so far."""
        return len(self.signatures)


@dataclass
class SimulationMetrics:
    """Counters accumulated by the agent-level simulation engine.

    Attributes
    ----------
    population_size:
        ``n``; fixed for the lifetime of a run.
    interactions:
        Number of interactions executed.
    null_interactions:
        Interactions in which neither agent changed state (useful when
        checking silence/stability empirically).
    convergence_interaction:
        Interaction index at which the convergence predicate first held and
        kept holding until the end of the run, or ``None``.
    state_usage:
        Tracker of distinct states, when enabled.
    """

    population_size: int
    interactions: int = 0
    null_interactions: int = 0
    convergence_interaction: int | None = None
    state_usage: StateUsageTracker | None = None

    @property
    def parallel_time(self) -> float:
        """Parallel time elapsed so far."""
        return self.interactions / self.population_size

    @property
    def convergence_time(self) -> float | None:
        """Parallel time at which the run converged, or ``None``."""
        if self.convergence_interaction is None:
            return None
        return self.convergence_interaction / self.population_size

    @property
    def distinct_states(self) -> int | None:
        """Distinct states observed, or ``None`` when tracking is disabled."""
        if self.state_usage is None:
            return None
        return self.state_usage.distinct_states

    def record_interaction(self, changed: bool) -> None:
        """Record one executed interaction.

        Parameters
        ----------
        changed:
            Whether at least one of the two agents changed state.
        """
        self.interactions += 1
        if not changed:
            self.null_interactions += 1

    def summary(self) -> dict:
        """Return a JSON-friendly summary of the run metrics."""
        return {
            "population_size": self.population_size,
            "interactions": self.interactions,
            "parallel_time": self.parallel_time,
            "null_interactions": self.null_interactions,
            "convergence_interaction": self.convergence_interaction,
            "convergence_time": self.convergence_time,
            "distinct_states": self.distinct_states,
        }
