"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``ValueError`` raised by numpy, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid population configuration was supplied or produced.

    Examples: negative state counts, an empty population, or an initial
    configuration whose total size disagrees with the declared population
    size.
    """


class ProtocolError(ReproError):
    """A protocol definition is inconsistent.

    Examples: a transition function returning states of the wrong type, a
    finite-state protocol producing a state outside its declared state set,
    or protocol parameters outside their documented domain.
    """


class SimulationError(ReproError):
    """The simulation driver was used incorrectly or reached a bad state.

    Examples: stepping a simulation that has already been exhausted, asking
    for a snapshot of an agent index that does not exist, or exceeding a
    hard interaction budget without satisfying a required predicate.
    """


class ConvergenceError(SimulationError):
    """A run failed to converge within its interaction or time budget."""


class CompositionError(ProtocolError):
    """A protocol composition (restart scheme / staging) is ill-formed.

    Examples: composing with a downstream protocol that does not implement
    the restartable interface, or declaring zero stages.
    """


class AnalysisError(ReproError):
    """A closed-form analysis routine was called with invalid arguments.

    Examples: a tail-bound evaluated at a negative deviation, or a
    probability outside ``[0, 1]``.
    """


class TerminationSpecError(ReproError):
    """A termination experiment specification is invalid.

    Examples: a non-positive density parameter ``alpha``, a producibility
    depth ``m < 0`` or rate threshold ``rho`` outside ``(0, 1]``.
    """
