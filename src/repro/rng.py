"""Randomness substrate used by agents and by the scheduler.

The paper's model gives every agent access to independent uniformly random
bits, pre-written on a read-only tape.  Two ingredients of the protocol draw
on that randomness:

* ``1/2``-geometric random variables (the number of fair-coin flips up to and
  including the first head), used for ``logSize2`` and for the per-epoch
  ``gr`` values whose maxima are averaged; and
* ordinary fair coin flips, used to pick roles.

Appendix B of the paper shows how to remove the explicit random bits and use
the *synthetic coin* given by the scheduler's symmetric choice of
sender/receiver.  The :class:`SyntheticCoin` helper mirrors that construction:
an ``A`` agent builds a geometric random variable incrementally, one coin flip
per interaction with an ``F`` agent, where the flip outcome is whether the
``A`` agent was the sender or the receiver.

All randomness in the library flows through :class:`RandomSource`, which wraps
a single :class:`numpy.random.Generator` so that entire simulations are
reproducible from one integer seed.  The whole library therefore draws from
one generator family (PCG64 via :func:`numpy.random.default_rng`), the same
family the array engines and backends use — there is no stdlib
``random.Random`` stream left to keep in sync, and the ``repro check``
determinism lint (rule D301) enforces that no module reintroduces one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence

import numpy as np

__all__ = [
    "RandomSource",
    "SyntheticCoin",
    "UniformSampler",
    "geometric",
    "max_of_geometrics",
    "spawn_seed",
]


class UniformSampler(Protocol):
    """Anything with a ``random() -> float in [0, 1)`` method.

    Satisfied by :class:`numpy.random.Generator`, :class:`RandomSource` and
    (for callers bridging legacy generators) :class:`random.Random`.
    """

    def random(self) -> float: ...


def spawn_seed(base_seed: int, *spawn_key: int) -> int:
    """Derive a collision-free child seed from a base seed and an index key.

    The harness used to seed run ``j`` at size index ``i`` with
    ``base_seed + 1000 i + j``, which collides as soon as ``j >= 1000`` and
    across sweeps whose base seeds differ by a multiple of 1000.  This helper
    instead hashes ``(base_seed, *spawn_key)`` through
    :class:`numpy.random.SeedSequence` spawning — distinct keys yield
    statistically independent streams, and distinct key *lengths* occupy
    disjoint domains, so e.g. ``spawn_seed(s, i, j)`` and
    ``spawn_seed(s, i, j, arm)`` never alias.

    Every sweep runner (finite-state, array, sequential, termination,
    tables) derives its per-trial seeds through this one function, so serial
    and parallel execution of the same sweep see identical seeds.

    Parameters
    ----------
    base_seed:
        Sweep-level seed (any Python int).
    spawn_key:
        Non-negative trial coordinates, typically ``(size_index, run_index)``.

    Returns
    -------
    int
        A seed in ``[0, 2**64)`` suitable for :func:`numpy.random.default_rng`.
    """
    from numpy.random import SeedSequence

    if any(part < 0 for part in spawn_key):
        raise ValueError(f"spawn_key parts must be non-negative, got {spawn_key}")
    # SeedSequence entropy must be non-negative; fold negative base seeds in.
    entropy = base_seed & 0xFFFFFFFFFFFFFFFF
    sequence = SeedSequence(entropy=entropy, spawn_key=tuple(spawn_key))
    return int(sequence.generate_state(2, "uint32").view("uint64")[0])


def geometric(rng: UniformSampler, p: float = 0.5) -> int:
    """Sample a ``p``-geometric random variable (support ``{1, 2, ...}``).

    Following the paper's definition (Appendix D.2): the number of consecutive
    coin flips until and including the first head, when each flip is a head
    with probability ``p``.  For ``p = 1/2`` the expectation is 2.

    Parameters
    ----------
    rng:
        Source of uniform randomness (anything with ``random()``).
    p:
        Success probability of each flip, in ``(0, 1]``.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"success probability must be in (0, 1], got {p}")
    count = 1
    while rng.random() >= p:
        count += 1
    return count


def max_of_geometrics(rng: UniformSampler, count: int, p: float = 0.5) -> int:
    """Sample the maximum of ``count`` i.i.d. ``p``-geometric random variables.

    This is the quantity ``M = max_i G_i`` whose expectation is approximately
    ``log2 n`` for ``count = n`` and ``p = 1/2`` (Eisenberg [28]); the
    approximate-counting protocol of Alistarh et al. [2] and the first stage
    of the paper's main protocol both compute it in a distributed fashion.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return max(geometric(rng, p) for _ in range(count))


@dataclass
class RandomSource:
    """Seeded randomness shared by a simulation.

    A single :class:`numpy.random.Generator` instance backs every draw so that
    a run is fully determined by its seed.  Protocols receive the
    :class:`RandomSource` (not the raw generator) so that the draws they are
    allowed to make are the ones the model grants: fair bits and geometric
    variables.

    Attributes
    ----------
    seed:
        Seed used to initialise the underlying generator.  ``None`` draws
        fresh OS entropy (non-reproducible).
    """

    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- draws available to agents (the model's read-only random tape) ------

    def fair_bit(self) -> int:
        """Return a uniformly random bit (0 or 1)."""
        return int(self._rng.integers(0, 2))

    def fair_coin(self) -> bool:
        """Return ``True`` with probability exactly 1/2."""
        return bool(self._rng.integers(0, 2))

    def geometric(self, p: float = 0.5) -> int:
        """Sample a ``p``-geometric random variable (see :func:`geometric`)."""
        return geometric(self._rng, p)

    def max_of_geometrics(self, count: int, p: float = 0.5) -> int:
        """Sample the maximum of ``count`` i.i.d. geometric variables."""
        return max_of_geometrics(self._rng, count, p)

    # -- draws used by the scheduler ----------------------------------------

    def uniform_pair(self, n: int) -> tuple[int, int]:
        """Return an ordered pair of distinct agent indices, uniform over pairs.

        The first element is the receiver and the second the sender, matching
        the convention of :class:`repro.types.InteractionPair`.
        """
        if n < 2:
            raise ValueError(f"need at least two agents to interact, got n={n}")
        receiver = int(self._rng.integers(n))
        sender = int(self._rng.integers(n - 1))
        if sender >= receiver:
            sender += 1
        return receiver, sender

    def randrange(self, upper: int) -> int:
        """Return a uniform integer in ``range(upper)``."""
        return int(self._rng.integers(upper))

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return float(self._rng.random())

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def sample_indices(self, n: int, k: int) -> list[int]:
        """Sample ``k`` distinct indices from ``range(n)`` without replacement."""
        if k > n:
            raise ValueError(f"cannot sample {k} distinct indices from range({n})")
        return [int(index) for index in self._rng.choice(n, size=k, replace=False)]

    def spawn(self) -> "RandomSource":
        """Derive an independent child source (useful for parallel sweeps)."""
        return RandomSource(seed=int(self._rng.integers(2**63)))

    def raw(self) -> np.random.Generator:
        """Expose the underlying generator (escape hatch for numpy bridging)."""
        return self._rng


@dataclass
class SyntheticCoin:
    """Incremental geometric-variable generator with no explicit random bits.

    Appendix B of the paper replaces the random tape with the *synthetic coin*
    implicit in the scheduler: when an ``A`` agent interacts with an ``F``
    agent, whether the ``A`` agent is the sender or the receiver is a fair,
    independent coin flip.  ``Generate-Clock`` / ``Generate-G.R.V`` increment
    a counter while the flips come up "sender" and finish on the first
    "receiver" flip.

    This helper tracks one in-progress geometric variable for one agent.  The
    simulation feeds it one observation per A–F interaction.

    Attributes
    ----------
    value:
        Current value of the variable being generated (starts at 1, per the
        pseudocode's initial ``gr = 1`` / ``logSize2 = 1``).
    complete:
        ``True`` once the terminating "heads" flip has been observed.
    """

    value: int = 1
    complete: bool = False

    def observe(self, agent_was_sender: bool) -> bool:
        """Record one synthetic coin flip.

        Parameters
        ----------
        agent_was_sender:
            ``True`` if the generating agent was the sender in this A–F
            interaction ("tails": keep counting), ``False`` if it was the
            receiver ("heads": stop).

        Returns
        -------
        bool
            ``True`` if the geometric variable is now complete.
        """
        if self.complete:
            raise ValueError("geometric variable already complete; reset() first")
        if agent_was_sender:
            self.value += 1
        else:
            self.complete = True
        return self.complete

    def reset(self, initial: int = 1) -> None:
        """Start generating a fresh geometric variable."""
        self.value = initial
        self.complete = False


def stream_of_geometrics(
    seed: int | None, count: int, p: float = 0.5
) -> Iterator[int]:
    """Yield ``count`` i.i.d. ``p``-geometric samples from a fresh generator.

    Convenience used by analysis validation tests and by workload generators
    that need a reproducible stream without constructing a full
    :class:`RandomSource`.
    """
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield geometric(rng, p)


def empirical_maximum_distribution(
    seed: int | None, population: int, trials: int, p: float = 0.5
) -> Sequence[int]:
    """Monte-Carlo sample of ``max`` of ``population`` geometric variables.

    Returns ``trials`` independent samples of ``M = max_{i<population} G_i``.
    Used by the analysis tests to validate the closed-form expectation and the
    tail bounds of Appendix D against simulation.
    """
    if population <= 0 or trials <= 0:
        raise ValueError("population and trials must be positive")
    rng = np.random.default_rng(seed)
    return [max_of_geometrics(rng, population, p) for _ in range(trials)]
