"""``m``-``rho``-producible state sets (the combinatorial core of Theorem 4.1).

Given a set of initially present states ``Lambda_0`` and a rate threshold
``rho``, the paper defines ``PROD_rho(Gamma)`` as the states producible by a
single transition among states of ``Gamma`` whose probability is at least
``rho``, and the increasing chain ``Lambda_rho^i = Lambda_rho^{i-1} ∪
PROD_rho(Lambda_rho^{i-1})``.  A state in ``Lambda_rho^m`` is
*m-rho-producible*.

The proof of Theorem 4.1 takes a finite terminating execution from some dense
configuration, lets ``m`` be its length and ``rho`` the smallest rate constant
used, and observes that the termination signal is then ``m``-``rho``-producible
— so by the timer/density lemma it is produced in O(1) time from every larger
dense configuration.

:class:`ProducibilityAnalysis` computes the chain for any finite-state
protocol, reports at which depth each state first appears, and can extract the
set relevant to a termination specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.exceptions import TerminationSpecError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition


@dataclass(frozen=True)
class ProducibilityResult:
    """Result of a producibility closure computation.

    Attributes
    ----------
    initial_states:
        ``Lambda_0``: the states assumed present initially.
    rho:
        The rate threshold used.
    depth_of:
        Mapping from each producible state to the smallest ``m`` such that it
        is ``m``-``rho``-producible (0 for initial states).
    levels:
        The chain ``Lambda_rho^0 ⊆ Lambda_rho^1 ⊆ ...`` until it stabilises,
        as a list of frozensets.
    """

    initial_states: frozenset[Hashable]
    rho: float
    depth_of: Mapping[Hashable, int]
    levels: Sequence[frozenset[Hashable]]

    @property
    def closure(self) -> frozenset[Hashable]:
        """All producible states (the final level of the chain)."""
        return self.levels[-1]

    @property
    def closure_depth(self) -> int:
        """Number of iterations until the chain stabilised."""
        return len(self.levels) - 1

    def is_producible(self, state: Hashable) -> bool:
        """Whether ``state`` is ``m``-``rho``-producible for some finite ``m``."""
        return state in self.depth_of

    def producible_at_depth(self, depth: int) -> frozenset[Hashable]:
        """``Lambda_rho^depth`` (clamped to the stabilised closure)."""
        if depth < 0:
            raise TerminationSpecError(f"depth must be non-negative, got {depth}")
        return self.levels[min(depth, len(self.levels) - 1)]


class ProducibilityAnalysis:
    """Compute producibility closures over a finite-state protocol.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.protocols.base.FiniteStateProtocol`; its transition
        table (with per-outcome probabilities as rate constants) defines
        ``PROD_rho``.
    """

    def __init__(self, protocol: FiniteStateProtocol) -> None:
        self.protocol = protocol
        self._table = protocol.transition_table()

    def _products(self, present: frozenset[Hashable], rho: float) -> frozenset[Hashable]:
        """``PROD_rho(present)``: states reachable by one sufficiently likely transition."""
        produced: set[Hashable] = set()
        for (a, b), outcomes in self._table.items():
            if a not in present or b not in present:
                continue
            for outcome in outcomes:
                if outcome.probability >= rho:
                    produced.add(outcome.receiver_out)
                    produced.add(outcome.sender_out)
        return frozenset(produced)

    def closure(
        self,
        initial_states: Iterable[Hashable],
        rho: float = 1e-9,
        max_depth: int | None = None,
    ) -> ProducibilityResult:
        """Compute the chain ``Lambda_rho^i`` starting from ``initial_states``.

        Parameters
        ----------
        initial_states:
            ``Lambda_0``.
        rho:
            Rate threshold; transitions with probability below ``rho`` are
            ignored (the paper's argument fixes ``rho`` as the smallest rate
            constant appearing in one particular terminating execution).
        max_depth:
            Optional cap on the number of iterations (``m``); ``None`` means
            iterate to stabilisation (always finite for finite-state
            protocols).
        """
        if not 0.0 < rho <= 1.0:
            raise TerminationSpecError(f"rho must be in (0, 1], got {rho}")
        level: frozenset[Hashable] = frozenset(initial_states)
        if not level:
            raise TerminationSpecError("at least one initial state is required")
        unknown = level - set(self.protocol.states())
        if unknown:
            raise TerminationSpecError(
                f"initial states not in the protocol's state set: {sorted(map(repr, unknown))}"
            )
        depth_of: dict[Hashable, int] = {state: 0 for state in level}
        levels: list[frozenset[Hashable]] = [level]
        depth = 0
        while max_depth is None or depth < max_depth:
            produced = self._products(level, rho)
            next_level = level | produced
            if next_level == level:
                break
            depth += 1
            for state in next_level - level:
                depth_of[state] = depth
            level = next_level
            levels.append(level)
        return ProducibilityResult(
            initial_states=levels[0], rho=rho, depth_of=depth_of, levels=levels
        )

    def terminated_states_producible(
        self,
        initial_states: Iterable[Hashable],
        terminated: Callable[[Hashable], bool],
        rho: float = 1e-9,
    ) -> frozenset[Hashable]:
        """The terminated states that are producible from ``initial_states``.

        If this set is non-empty, Theorem 4.1 applies: from sufficiently large
        dense configurations containing ``initial_states`` the termination
        signal appears within constant time with overwhelming probability.
        """
        result = self.closure(initial_states, rho=rho)
        return frozenset(state for state in result.closure if terminated(state))


def producible_states(
    protocol: FiniteStateProtocol,
    initial_states: Iterable[Hashable],
    rho: float = 1e-9,
    max_depth: int | None = None,
) -> frozenset[Hashable]:
    """Convenience wrapper returning just the producible-state closure."""
    analysis = ProducibilityAnalysis(protocol)
    return analysis.closure(initial_states, rho=rho, max_depth=max_depth).closure
