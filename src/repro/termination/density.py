"""Empirical verification of the timer/density lemma (Lemma 4.2).

Lemma 4.2 states: for every ``alpha``, ``m``, ``rho`` there are constants
``epsilon``, ``delta``, ``n_0`` such that from every ``alpha``-dense
configuration of size ``n >= n_0``, with probability at least ``1 - 2^{-eps n}``,
*every* ``m``-``rho``-producible state has count at least ``delta n`` at
parallel time 1.

The experiment here makes that statement measurable for concrete finite-state
protocols: it instantiates a dense initial family at several population sizes,
runs the count-based engine for one unit of parallel time, and records, for
every producible state, the count reached (as a fraction of ``n``) and the
first time the state reached a ``delta n`` threshold.  The paper's claim
corresponds to the observed fractions being bounded away from zero uniformly
in ``n`` — which benchmark ``T-DENSE`` tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.engine.count_simulator import CountSimulator
from repro.exceptions import TerminationSpecError
from repro.protocols.base import FiniteStateProtocol
from repro.termination.definitions import DenseInitialFamily
from repro.termination.producibility import ProducibilityAnalysis


@dataclass(frozen=True)
class DensityObservation:
    """Counts observed for the producible states after one unit of time.

    Attributes
    ----------
    population_size:
        ``n`` for this run.
    observation_time:
        The parallel time at which counts were read (1.0 by default).
    fractions:
        Mapping from producible state to ``count / n`` at the observation time.
    min_fraction:
        The minimum over producible states (the empirical ``delta``).
    first_reach_times:
        Mapping from producible state to the first sampled parallel time at
        which its count reached ``threshold_fraction * n`` (``None`` if never).
    threshold_fraction:
        The ``delta`` used for ``first_reach_times``.
    """

    population_size: int
    observation_time: float
    fractions: dict[Hashable, float]
    min_fraction: float
    first_reach_times: dict[Hashable, float | None]
    threshold_fraction: float


def density_trajectory(
    protocol: FiniteStateProtocol,
    family: DenseInitialFamily,
    population_size: int,
    observation_time: float = 1.0,
    threshold_fraction: float = 0.01,
    samples: int = 20,
    seed: int | None = None,
    rho: float = 1e-9,
) -> DensityObservation:
    """Run one density experiment and summarise it.

    Parameters
    ----------
    protocol:
        The finite-state protocol under test.
    family:
        The dense initial family (its instantiation at ``population_size``
        must be ``family.alpha``-dense).
    population_size:
        ``n``.
    observation_time:
        How long to run (Lemma 4.2 uses parallel time 1).
    threshold_fraction:
        The ``delta`` for which first-reach times are recorded.
    samples:
        Number of trajectory snapshots over the run.
    seed:
        Randomness seed.
    rho:
        Rate threshold for the producibility closure.
    """
    if observation_time <= 0:
        raise TerminationSpecError(
            f"observation_time must be positive, got {observation_time}"
        )
    if not 0.0 < threshold_fraction < 1.0:
        raise TerminationSpecError(
            f"threshold_fraction must be in (0, 1), got {threshold_fraction}"
        )
    initial_configuration = family.instantiate(population_size)
    analysis = ProducibilityAnalysis(protocol)
    producible = analysis.closure(
        initial_configuration.states_present(), rho=rho
    ).closure

    simulator = CountSimulator(
        protocol,
        population_size,
        seed=seed,
        initial_configuration=initial_configuration,
    )
    trace = simulator.run_with_trace(observation_time, samples=samples)

    threshold = threshold_fraction * population_size
    first_reach: dict[Hashable, float | None] = {}
    for state in producible:
        reached: float | None = None
        for point in trace:
            if point.configuration.count(state) >= threshold:
                reached = point.parallel_time
                break
        first_reach[state] = reached

    final = trace[-1].configuration
    fractions = {
        state: final.count(state) / population_size for state in producible
    }
    min_fraction = min(fractions.values()) if fractions else 0.0
    return DensityObservation(
        population_size=population_size,
        observation_time=trace[-1].parallel_time,
        fractions=fractions,
        min_fraction=min_fraction,
        first_reach_times=first_reach,
        threshold_fraction=threshold_fraction,
    )


@dataclass
class DensityExperiment:
    """Sweep the density experiment over growing population sizes.

    Parameters
    ----------
    protocol:
        The finite-state protocol under test.
    family:
        The dense initial family.
    threshold_fraction:
        ``delta`` for the first-reach times.
    observation_time:
        Parallel-time horizon of each run (Lemma 4.2: 1).
    """

    protocol: FiniteStateProtocol
    family: DenseInitialFamily
    threshold_fraction: float = 0.01
    observation_time: float = 1.0

    def run(
        self,
        population_sizes: Sequence[int],
        seed: int | None = None,
        samples: int = 20,
    ) -> list[DensityObservation]:
        """Run the experiment at each population size and return the observations."""
        observations = []
        for index, population_size in enumerate(population_sizes):
            observations.append(
                density_trajectory(
                    self.protocol,
                    self.family,
                    population_size,
                    observation_time=self.observation_time,
                    threshold_fraction=self.threshold_fraction,
                    samples=samples,
                    seed=None if seed is None else seed + index,
                )
            )
        return observations

    def minimum_fractions(
        self, observations: Sequence[DensityObservation]
    ) -> dict[int, float]:
        """The empirical ``delta`` (min producible-state fraction) per population size.

        Lemma 4.2 predicts these values stay bounded away from zero as ``n``
        grows; the benchmark prints them as a table.
        """
        return {
            observation.population_size: observation.min_fraction
            for observation in observations
        }
