"""The Theorem 4.1 experiment: termination-signal time as the population grows.

Theorem 4.1 is an impossibility result, so it cannot be "run" directly; what
can be measured is its operational content:

* **Uniform + dense ⇒ early signal.**  Take any uniform protocol whose agents
  can set a ``terminated`` flag, started from a dense (e.g. all-identical)
  configuration.  Whatever finite behaviour first produced the signal at some
  small ``n`` is ``m``-``rho``-producible, so at every larger ``n`` the signal
  appears within *constant* parallel time — long before a task needing
  ``omega(1)`` time (leader election, size estimation, majority) can have
  finished.  The canonical example is the Figure-1 counter protocol run with a
  threshold tuned for a small population and then deployed into larger ones.

* **Leader ⇒ the signal can be delayed.**  The leader-driven protocols
  (Michail's exact counting, the paper's Theorem 3.13 variant) start from
  non-dense configurations, and their measured termination time grows with
  ``n`` — the hypothesis of density is what the proof genuinely needs.

:func:`measure_termination_time` measures the parallel time until *some* agent
sets its terminated flag for one run; :func:`termination_time_sweep` repeats
this over population sizes and seeds, producing the series benchmark
``T-TERM`` reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.simulator import Simulation
from repro.exceptions import ConvergenceError, TerminationSpecError
from repro.protocols.base import AgentProtocol
from repro.rng import spawn_seed
from repro.termination.definitions import TerminationSpec


@dataclass(frozen=True)
class TerminationTimeObservation:
    """Termination-time measurements at one population size.

    Attributes
    ----------
    population_size:
        ``n``.
    times:
        Parallel time at which the first terminated agent appeared, one entry
        per run that terminated within the budget.
    failures:
        Number of runs that did not terminate within the budget.
    """

    population_size: int
    times: tuple[float, ...]
    failures: int

    @property
    def mean_time(self) -> float | None:
        """Mean termination time over successful runs (``None`` if none)."""
        if not self.times:
            return None
        return statistics.fmean(self.times)

    @property
    def max_time(self) -> float | None:
        """Maximum termination time over successful runs."""
        if not self.times:
            return None
        return max(self.times)

    @property
    def termination_probability(self) -> float:
        """Fraction of runs that terminated within the budget (estimates ``kappa``)."""
        total = len(self.times) + self.failures
        return len(self.times) / total if total else 0.0


def measure_termination_time(
    protocol_factory: Callable[[], AgentProtocol],
    spec: TerminationSpec,
    population_size: int,
    max_parallel_time: float,
    seed: int | None = None,
    check_interval: int | None = None,
) -> float | None:
    """Parallel time until some agent terminates, for one simulated run.

    Returns ``None`` when no agent terminated within ``max_parallel_time``
    (for well-behaved protocols — leader-driven termination — this simply
    means the budget was too small; for the theorem's experiment it should not
    happen for uniform dense protocols once ``n`` is moderate).
    """
    simulation = Simulation(
        protocol=protocol_factory(), population_size=population_size, seed=seed
    )

    def some_agent_terminated(sim: Simulation) -> bool:
        return spec.population_terminated(sim.states)

    try:
        return simulation.run_until(
            some_agent_terminated,
            max_parallel_time=max_parallel_time,
            check_interval=check_interval,
        )
    except ConvergenceError:
        return None


def termination_time_sweep(
    protocol_factory: Callable[[], AgentProtocol],
    spec: TerminationSpec,
    population_sizes: Sequence[int],
    runs_per_size: int = 5,
    max_parallel_time: float = 200.0,
    seed: int = 0,
    check_interval: int | None = None,
) -> list[TerminationTimeObservation]:
    """Measure termination times across population sizes.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable building a fresh protocol instance per run
        (important for protocol objects holding mutable configuration).
    spec:
        Which states count as terminated.
    population_sizes:
        The sweep over ``n``.
    runs_per_size:
        Independent runs per size (different seeds).
    max_parallel_time:
        Per-run budget; runs exceeding it are recorded as failures.
    seed:
        Base seed; run ``j`` at size index ``i`` uses
        :func:`repro.rng.spawn_seed`\\ ``(seed, i, j)`` (collision-free).
    """
    if runs_per_size < 1:
        raise TerminationSpecError(f"runs_per_size must be >= 1, got {runs_per_size}")
    observations = []
    for size_index, population_size in enumerate(population_sizes):
        times: list[float] = []
        failures = 0
        for run_index in range(runs_per_size):
            run_seed = spawn_seed(seed, size_index, run_index)
            elapsed = measure_termination_time(
                protocol_factory,
                spec,
                population_size,
                max_parallel_time=max_parallel_time,
                seed=run_seed,
                check_interval=check_interval,
            )
            if elapsed is None:
                failures += 1
            else:
                times.append(elapsed)
        observations.append(
            TerminationTimeObservation(
                population_size=population_size,
                times=tuple(times),
                failures=failures,
            )
        )
    return observations


def growth_ratio(observations: Sequence[TerminationTimeObservation]) -> float | None:
    """Ratio of mean termination time at the largest vs smallest population.

    For a uniform dense protocol Theorem 4.1 predicts this ratio stays ``O(1)``
    (empirically close to 1); for leader-driven or nonuniform protocols it
    grows with the size ratio.  Returns ``None`` if either endpoint had no
    successful runs.
    """
    if len(observations) < 2:
        return None
    first = observations[0].mean_time
    last = observations[-1].mean_time
    if first is None or last is None or first == 0:
        return None
    return last / first
