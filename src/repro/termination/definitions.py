"""Formal definitions of Section 4: termination, density, i.o.-dense families.

The paper gives the first formal definition of a *terminating* population
protocol: the state set is partitioned into terminated and non-terminated
states (a Boolean ``terminated`` field), all valid initial configurations are
non-terminated, and the protocol is ``kappa``-``t``-terminating if from every
valid initial configuration it reaches a terminated configuration with
probability at least ``kappa``, but takes at least ``t(n)`` time to do so.

A configuration is ``alpha``-dense if every state present occupies at least an
``alpha`` fraction of the agents; a protocol is i.o.-dense if infinitely many
valid initial configurations are ``alpha``-dense for a common ``alpha > 0``
(in particular no initial leader).  Theorem 4.1: a uniform i.o.-dense
``kappa``-``t``-terminating protocol has ``t(n) = O(1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.engine.configuration import Configuration
from repro.exceptions import TerminationSpecError


def is_alpha_dense(configuration: Configuration, alpha: float) -> bool:
    """Whether every state present occupies at least ``alpha * n`` agents."""
    return configuration.is_alpha_dense(alpha)


def is_terminated_configuration(
    configuration: Configuration, terminated: Callable[[Hashable], bool]
) -> bool:
    """Whether at least one agent is in a terminated state.

    Matches the paper's definition: a configuration is terminated as soon as
    *some* agent has set ``terminated = True`` (the signal then typically
    spreads, but its mere production is what the definition tracks).
    """
    return any(terminated(state) for state in configuration.states_present())


@dataclass(frozen=True)
class TerminationSpec:
    """Specification of the termination structure of a protocol.

    Parameters
    ----------
    terminated_predicate:
        Maps an agent state (or state signature) to whether it is a
        terminated state (the paper's partition ``Lambda_T`` / ``Lambda_N``).
    kappa:
        The probability threshold of the ``kappa``-``t``-terminating
        definition; experiments estimate the achieved probability and compare.
    description:
        Human-readable name for reports.
    """

    terminated_predicate: Callable[[Any], bool]
    kappa: float = 0.5
    description: str = "termination"

    def __post_init__(self) -> None:
        if not 0.0 < self.kappa <= 1.0:
            raise TerminationSpecError(f"kappa must be in (0, 1], got {self.kappa}")

    def configuration_terminated(self, configuration: Configuration) -> bool:
        """Whether a configuration (of state signatures) is terminated."""
        return is_terminated_configuration(configuration, self.terminated_predicate)

    def population_terminated(self, states: Iterable[Any]) -> bool:
        """Whether any state in an iterable of agent states is terminated."""
        return any(self.terminated_predicate(state) for state in states)


@dataclass
class DenseInitialFamily:
    """An i.o.-dense family of initial configurations.

    The family is described by a base configuration (over the *initial* states
    of the protocol) and is instantiated at any population size by scaling the
    base counts proportionally; every instantiation with
    ``n >= len(base) / alpha`` is ``alpha``-dense.

    Parameters
    ----------
    base_fractions:
        Mapping from initial state to the fraction of the population that
        starts in it.  Fractions must be positive and sum to 1 (within
        floating-point tolerance).
    description:
        Name used in reports.
    """

    base_fractions: dict[Hashable, float]
    description: str = "dense family"
    _alpha: float = field(init=False)

    def __post_init__(self) -> None:
        if not self.base_fractions:
            raise TerminationSpecError("the family must contain at least one state")
        total = sum(self.base_fractions.values())
        if abs(total - 1.0) > 1e-9:
            raise TerminationSpecError(
                f"state fractions must sum to 1, got {total}"
            )
        if any(fraction <= 0 for fraction in self.base_fractions.values()):
            raise TerminationSpecError("all state fractions must be positive")
        self._alpha = min(self.base_fractions.values()) / 2.0

    @property
    def alpha(self) -> float:
        """A density parameter valid for every instantiation of the family.

        Half of the smallest fraction: rounding one agent up or down cannot
        push a state below half its target fraction once ``n`` is at least
        ``2 / min_fraction``.
        """
        return self._alpha

    @classmethod
    def all_same_state(cls, state: Hashable, description: str = "all-identical") -> "DenseInitialFamily":
        """The family used by the paper's own protocol: every agent starts in ``state``."""
        return cls(base_fractions={state: 1.0}, description=description)

    def instantiate(self, population_size: int) -> Configuration:
        """Build the configuration of size ``population_size`` from the fractions.

        Counts are rounded down per state and the remainder is assigned to the
        most frequent state, so the total is exactly ``population_size``.
        """
        if population_size < len(self.base_fractions):
            raise TerminationSpecError(
                f"population {population_size} too small for "
                f"{len(self.base_fractions)} distinct states"
            )
        counts: dict[Hashable, int] = {}
        assigned = 0
        for state, fraction in self.base_fractions.items():
            count = max(1, int(fraction * population_size))
            counts[state] = count
            assigned += count
        # Adjust the largest state so the total matches exactly.
        largest = max(counts, key=lambda state: counts[state])
        counts[largest] += population_size - assigned
        if counts[largest] <= 0:
            raise TerminationSpecError(
                "rounding produced a non-positive count; use a larger population"
            )
        return Configuration(counts)

    def initial_states(self, population_size: int) -> list[Hashable]:
        """Explicit per-agent initial state list for the agent-level engine."""
        configuration = self.instantiate(population_size)
        states: list[Hashable] = []
        for state, count in configuration.items():
            states.extend([state] * count)
        return states

    def sizes(self, start: int, count: int, factor: int = 2) -> Iterator[int]:
        """Yield ``count`` geometrically growing population sizes for sweeps."""
        if start < len(self.base_fractions):
            raise TerminationSpecError("start size too small for the family")
        if count < 1 or factor < 2:
            raise TerminationSpecError("count must be >= 1 and factor >= 2")
        size = start
        for _ in range(count):
            yield size
            size *= factor

    def is_dense_at(self, population_size: int) -> bool:
        """Check that the instantiation at ``population_size`` is ``alpha``-dense."""
        return self.instantiate(population_size).is_alpha_dense(self.alpha)
