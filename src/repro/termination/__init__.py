"""Termination theory of Section 4: definitions, producibility, density experiments.

The paper's second main result (Theorem 4.1) states that a *uniform*,
*i.o.-dense* protocol cannot be ``kappa``-``t(n)``-terminating unless
``t(n) = O(1)``: from dense initial configurations, every state producible by
a bounded number of sufficiently likely transitions (in particular the
termination signal, if the protocol ever terminates) appears in ``Omega(n)``
count within constant parallel time.

This package makes the proof's ingredients executable:

* :mod:`repro.termination.definitions` — terminated configurations,
  ``kappa``-``t``-terminating specifications, ``alpha``-dense configurations
  and i.o.-dense families;
* :mod:`repro.termination.producibility` — the ``m``-``rho``-producible state
  closure ``Lambda_rho^m`` over a finite-state protocol's transition relation;
* :mod:`repro.termination.density` — empirical verification of the
  timer/density lemma (Lemma 4.2): trajectories of state counts from dense
  configurations;
* :mod:`repro.termination.impossibility` — the end-to-end experiment behind
  benchmark ``T-TERM``: the termination-signal time of a uniform protocol
  stays ``O(1)`` as ``n`` grows (and the signal therefore fires before the
  underlying task can possibly have completed), while leader-driven and
  nonuniform protocols delay it.
"""

from repro.termination.definitions import (
    DenseInitialFamily,
    TerminationSpec,
    is_alpha_dense,
    is_terminated_configuration,
)
from repro.termination.producibility import (
    ProducibilityAnalysis,
    producible_states,
)
from repro.termination.density import (
    DensityObservation,
    DensityExperiment,
    density_trajectory,
)
from repro.termination.impossibility import (
    TerminationTimeObservation,
    measure_termination_time,
    termination_time_sweep,
)

__all__ = [
    "DenseInitialFamily",
    "TerminationSpec",
    "is_alpha_dense",
    "is_terminated_configuration",
    "ProducibilityAnalysis",
    "producible_states",
    "DensityObservation",
    "DensityExperiment",
    "density_trajectory",
    "TerminationTimeObservation",
    "measure_termination_time",
    "termination_time_sweep",
]
